package exp

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaperExactly(t *testing.T) {
	for _, r := range Table1() {
		if diff := r.MS - r.PaperMS; diff > 0.01 || diff < -0.01 {
			t.Errorf("%v write=%v: %.2f ms vs paper %.2f", r.Kind, r.Write, r.MS, r.PaperMS)
		}
	}
}

func TestTable2WithinTolerance(t *testing.T) {
	for _, r := range Table2() {
		rel := (r.MS - r.PaperMS) / r.PaperMS
		if rel > 0.10 || rel < -0.10 {
			t.Errorf("%v→%v %dB: %.1f ms vs paper %.1f (%.0f%% off)",
				r.From, r.To, r.Size, r.MS, r.PaperMS, rel*100)
		}
	}
}

func TestTable3WithinTolerance(t *testing.T) {
	for _, r := range Table3() {
		rel := (r.MS - r.PaperMS) / r.PaperMS
		if rel > 0.12 || rel < -0.12 {
			t.Errorf("%s %dB: %.1f ms vs paper %.1f (%.0f%% off)",
				r.TypeName, r.Size, r.MS, r.PaperMS, rel*100)
		}
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	rows := Table4()
	byKey := make(map[string]float64)
	worst := 0.0
	for _, r := range rows {
		op := "R"
		if r.Write {
			op = "W"
		}
		byKey[r.Scenario+"|"+r.Pair+"|"+op] = r.MS
		rel := (r.MS - r.PaperMS) / r.PaperMS
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
		// Every cell within 20% of the paper.
		if rel > 0.20 {
			t.Errorf("%s %s %s: %.1f ms vs paper %.1f (%.0f%% off)",
				r.Scenario, r.Pair, op, r.MS, r.PaperMS, rel*100)
		}
	}
	// Orderings the paper reports must hold:
	// more manager hops cost more,
	if !(byKey["R/M→O|Sun→Sun|R"] < byKey["R→M/O|Sun→Sun|R"] &&
		byKey["R→M/O|Sun→Sun|R"] < byKey["R→M→O|Sun→Sun|R"]) {
		t.Error("manager-hop ordering violated for Sun→Sun reads")
	}
	// heterogeneous pairs cost more than Sun→Sun but are comparable to
	// Ffly→Ffly (the paper's headline result),
	if !(byKey["R/M→O|Ffly→Sun|R"] > byKey["R/M→O|Sun→Sun|R"]) {
		t.Error("heterogeneous fault not costlier than Sun→Sun")
	}
	het := byKey["R/M→O|Ffly→Sun|R"]
	hom := byKey["R/M→O|Ffly→Ffly|R"]
	if het/hom > 1.35 || hom/het > 1.35 {
		t.Errorf("heterogeneous (%.1f) vs homogeneous Firefly (%.1f) not comparable", het, hom)
	}
	t.Logf("worst Table 4 deviation: %.0f%%", worst*100)
}

func TestFigure3PhysicalBeatsDistributedSlightly(t *testing.T) {
	res := Figure3(4)
	for i := range res.Physical {
		phys, dist := res.Physical[i].Seconds, res.Distributed[i].Seconds
		if dist < phys {
			t.Errorf("%d threads: DSM (%.1fs) beat physical shared memory (%.1fs)",
				res.Physical[i].Threads, dist, phys)
		}
		// "For multiplication of large matrices, performance penalty of
		// distributed memory is minimal."
		if dist > phys*1.30 {
			t.Errorf("%d threads: DSM penalty %.0f%% not minimal",
				res.Physical[i].Threads, 100*(dist-phys)/phys)
		}
	}
	// Both series must scale down with threads.
	if res.Physical[len(res.Physical)-1].Seconds >= res.Physical[0].Seconds {
		t.Error("physical series does not improve with threads")
	}
}

func TestFigure4ImprovesThenFlattens(t *testing.T) {
	pts := Figure4(16)
	if pts[0].Seconds < pts[len(pts)-1].Seconds {
		t.Fatal("16 threads slower than 1")
	}
	// Performance improves markedly up to ~14 threads...
	best := pts[0].Seconds
	bestAt := 1
	for _, p := range pts {
		if p.Seconds < best {
			best = p.Seconds
			bestAt = p.Threads
		}
	}
	if bestAt < 8 {
		t.Errorf("best response time at %d threads; paper sees gains up to ~14", bestAt)
	}
	// ...and the marginal gain beyond 12 threads is small (overheads
	// start to dominate).
	if gain := pts[11].Seconds - pts[15].Seconds; gain > 0.15*pts[11].Seconds {
		t.Errorf("gain from 12→16 threads is %.0f%%; expected flattening", 100*gain/pts[11].Seconds)
	}
}

func TestFigure5SpeedupNearPaper(t *testing.T) {
	pts := Figure5(10)
	last := pts[len(pts)-1]
	// Paper: speedup ≈7 with 10 threads; 44 s on three Fireflies
	// (versus ~6 minutes on a Sun). Synthetic boards are more balanced
	// than camera images, so our scaling runs somewhat better; accept
	// the same decade.
	if last.Speedup < 5.5 || last.Speedup > 11 {
		t.Errorf("PCB speedup at 10 threads = %.1f, paper ≈7", last.Speedup)
	}
	if last.Seconds < 25 || last.Seconds > 60 {
		t.Errorf("PCB at 10 threads took %.0fs, paper ≈44s", last.Seconds)
	}
}

func TestFigure6SmallPagesSlower(t *testing.T) {
	res := Figure6(8)
	for i := range res.Large {
		if res.Small[i].Seconds <= res.Large[i].Seconds {
			t.Errorf("%d threads: small pages (%.1fs) not slower than large (%.1fs)",
				res.Large[i].Threads, res.Small[i].Seconds, res.Large[i].Seconds)
		}
	}
}

func TestFigure7MM2CloseToMM1(t *testing.T) {
	res := Figure7(8)
	for i := range res.MM1 {
		ratio := res.MM2[i].Seconds / res.MM1[i].Seconds
		if ratio > 1.25 {
			t.Errorf("%d threads: MM2/MM1 = %.2f under 1KB pages; expected small degradation",
				res.MM1[i].Threads, ratio)
		}
	}
}

func TestThrashingSevereAndFluctuating(t *testing.T) {
	rows := Thrashing([]int{8}, []int64{1, 2, 3})
	r := rows[0]
	// MM2 with 8 KB pages must move far more pages than MM1.
	if r.MeanTransfers < 3*float64(r.MM1Transfers) {
		t.Errorf("MM2 transfers %.0f not ≫ MM1's %d", r.MeanTransfers, r.MM1Transfers)
	}
	// Speedup relative to sequential is rarely observed (paper): with 8
	// threads the mean must show essentially no speedup.
	if r.MeanS < 0.75*r.SequentialS {
		t.Errorf("MM2 mean %.1fs shows real speedup over sequential %.1fs; thrashing unmodelled",
			r.MeanS, r.SequentialS)
	}
	// Fluctuation across seeds must be visible (the paper saw large
	// fluctuations even between consecutive runs of the same setting).
	if (r.MaxS-r.MinS)/r.MeanS < 0.08 {
		t.Errorf("spread %.1f–%.1f s too stable for a thrashing workload", r.MinS, r.MaxS)
	}
}

// TestThrashingRCFlattensTransfers pins the §3.3 extension's headline:
// under lazy release consistency the thrashing configuration's page
// traffic collapses to the compulsory fetches — at least 3× below the
// write-invalidate baseline — and the run is faster, not merely
// cheaper on the wire.
func TestThrashingRCFlattensTransfers(t *testing.T) {
	rows := ThrashingRC([]int{8}, 1)
	r := rows[0]
	if r.RCTransfers*3 > r.InvTransfers {
		t.Errorf("RC moved %d page bodies, write-invalidate %d; want ≥3× reduction", r.RCTransfers, r.InvTransfers)
	}
	if r.RCS >= r.InvS {
		t.Errorf("RC run (%.1fs) not faster than thrashing baseline (%.1fs)", r.RCS, r.InvS)
	}
	if r.RCDiffBytes == 0 {
		t.Error("RC run shipped no diffs; the brackets are not propagating writes")
	}
}

func TestSingleThreadOverheadIsLow(t *testing.T) {
	for _, r := range SingleThreadOverhead() {
		if r.OverheadPct > 6 || r.OverheadPct < -1 {
			t.Errorf("%s: 1-slave DSM overhead %.1f%%, paper found ≈0", r.App, r.OverheadPct)
		}
	}
}

func TestAblationSameKindSourceReducesConversions(t *testing.T) {
	r := AblationSameKindSource()
	if r.TunedConv >= r.BaselineConv {
		t.Errorf("same-kind preference did not reduce conversions: %d vs %d",
			r.TunedConv, r.BaselineConv)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := Table1Table()
	s := tbl.Format()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "Sun") {
		t.Fatalf("formatted table malformed:\n%s", s)
	}
}

func TestSyncStylesSpinlockIsWorse(t *testing.T) {
	r := SyncStyles(10)
	// §2.2: atomic operations on shared memory ping-pong whole pages;
	// the separate synchronization facility avoids that.
	if r.SpinlockS <= r.SemaphoreS {
		t.Errorf("spinlock (%.2fs) not slower than semaphores (%.2fs)", r.SpinlockS, r.SemaphoreS)
	}
	if r.SpinlockTransfers <= 2*r.SemaphoreTransfers {
		t.Errorf("spinlock moved %d pages vs semaphore's %d; expected ≫",
			r.SpinlockTransfers, r.SemaphoreTransfers)
	}
}

func TestManagerPlacementDistributedWins(t *testing.T) {
	r := ManagerPlacement()
	if r.CentralS < r.DistributedS {
		t.Errorf("central manager (%.1fs) beat distributed managers (%.1fs) on a fault-heavy workload",
			r.CentralS, r.DistributedS)
	}
}

func TestAlgorithmChoiceDependsOnAccessPattern(t *testing.T) {
	rows := AlgorithmChoice()
	byName := make(map[string]AlgorithmChoiceRow)
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// Read-shared data wants replication: MRSW beats both alternatives.
	rs := byName["read-shared"]
	if !(rs.MRSWS < rs.MigrationS && rs.MRSWS < rs.CentralS) {
		t.Errorf("read-shared: MRSW %.2f not best (migration %.2f, central %.2f)",
			rs.MRSWS, rs.MigrationS, rs.CentralS)
	}
	// Private data settles locally under page policies; central keeps
	// paying per operation.
	wp := byName["write-private"]
	if !(wp.MRSWS < wp.CentralS && wp.MigrationS < wp.CentralS) {
		t.Errorf("write-private: page policies (%.2f/%.2f) not below central %.2f",
			wp.MRSWS, wp.MigrationS, wp.CentralS)
	}
	// Fine-grain write sharing of one page ping-pongs pages; central
	// moves four bytes per update and wins.
	hs := byName["hotspot"]
	if !(hs.CentralS < hs.MRSWS) {
		t.Errorf("hotspot: central %.2f not below MRSW %.2f", hs.CentralS, hs.MRSWS)
	}
}

func TestInvalidationBroadcastScalesBetter(t *testing.T) {
	rows := InvalidationScaling([]int{1, 5, 10})
	for _, r := range rows {
		if r.BroadcastFrames >= r.UnicastFrames && r.Copyset > 1 {
			t.Errorf("copyset %d: broadcast frames %d not below unicast %d",
				r.Copyset, r.BroadcastFrames, r.UnicastFrames)
		}
	}
	// Latency is dominated by the members' parallel invalidation
	// processing either way (the acks still come back individually);
	// multicast must at least not cost time while saving frames.
	for _, r := range rows {
		if r.BroadcastMS > r.UnicastMS*1.05 {
			t.Errorf("copyset %d: broadcast %.1fms slower than unicast %.1fms",
				r.Copyset, r.BroadcastMS, r.UnicastMS)
		}
	}
	// Frame savings must grow with the copyset: one request frame
	// instead of one per member.
	if save := rows[2].UnicastFrames - rows[2].BroadcastFrames; save < 8 {
		t.Errorf("copyset 10 saves only %d frames", save)
	}
}

func TestUpdatePolicyWinsProducerConsumer(t *testing.T) {
	rows := AlgorithmChoice()
	for _, r := range rows {
		if r.Workload != "producer-consumer" {
			continue
		}
		if !(r.UpdateS < r.MRSWS && r.UpdateS < r.CentralS && r.UpdateS < r.MigrationS) {
			t.Errorf("producer-consumer: update %.2f not best (MRSW %.2f, migration %.2f, central %.2f)",
				r.UpdateS, r.MRSWS, r.MigrationS, r.CentralS)
		}
		return
	}
	t.Fatal("producer-consumer workload missing")
}

func TestPageSizeSweepExtremesMatchFigures(t *testing.T) {
	pts := PageSizeSweep(8)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	// MM1 (good locality): bigger pages must help monotonically-ish —
	// at least the 8 KB extreme beats the 1 KB extreme (Figure 6).
	if pts[3].MM1S >= pts[0].MM1S {
		t.Errorf("MM1: 8KB (%.1f) not faster than 1KB (%.1f)", pts[3].MM1S, pts[0].MM1S)
	}
	// MM2 (false sharing): the 8 KB extreme must be the worst relative
	// to MM1 — the thrashing penalty grows with page size.
	ratioSmall := pts[0].MM2S / pts[0].MM1S
	ratioLarge := pts[3].MM2S / pts[3].MM1S
	if ratioLarge <= ratioSmall {
		t.Errorf("MM2/MM1 penalty at 8KB (%.2f) not above 1KB (%.2f)", ratioLarge, ratioSmall)
	}
}
