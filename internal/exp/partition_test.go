package exp

import "testing"

// TestPartitionAvailability pins the §3.4 availability contrast: while
// a replica-holding host is partitioned away, the quorum engine keeps
// completing both reads and writes in the majority component, the
// invalidate/update engines stall their writes on the unreachable
// copy-holder, and migration — whose only copy is stranded on the cut
// host — fails outright.
func TestPartitionAvailability(t *testing.T) {
	rows := PartitionAvailability()
	byName := map[string]PartitionAvailabilityRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}

	q := byName["quorum"]
	// ~50 poll rounds fit in the 5 s window at the 100 ms period; demand
	// most of them rather than exact counts so calibration tweaks don't
	// churn this test.
	if q.CoordReads < 40 || q.Writes < 40 || q.Errors != 0 {
		t.Fatalf("quorum should stay available through the cut: %+v", q)
	}
	for _, name := range []string{"mrsw", "update"} {
		r := byName[name]
		if r.Writes > q.Writes/4 {
			t.Fatalf("%s writes should stall on the unreachable copy-holder: %+v (quorum %+v)", name, r, q)
		}
	}
	m := byName["migration"]
	if m.CoordReads+m.Writes > 0 || m.Errors == 0 {
		t.Fatalf("migration's only copy is stranded on the cut host, ops should fail: %+v", m)
	}
	c := byName["central"]
	if c.CoordReads < 40 || c.Writes < 40 {
		t.Fatalf("central's home host is in the majority, ops should complete: %+v", c)
	}
}
