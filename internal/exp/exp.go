// Package exp regenerates every table and figure of the paper's
// evaluation (§3) from the simulated system. Each experiment builds a
// fresh cluster, runs the measurement, and returns structured results
// carrying both the simulated value and the paper's published value so
// harnesses (cmd/mermaid-bench, the root benchmarks, EXPERIMENTS.md) can
// compare shapes.
package exp

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/cluster"
)

// Table is a printable result table.
type Table struct {
	// Title names the artifact ("Table 2", "Figure 4", …).
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// kindName abbreviates machine kinds the way the paper's tables do.
func kindName(k arch.Kind) string {
	if k == arch.Sun {
		return "Sun"
	}
	return "Ffly"
}

// sunMasterCluster builds the paper's representative heterogeneous
// configuration: a Sun workstation master (host 0) plus nf Fireflies
// with cpus processors each.
func sunMasterCluster(nf, cpus, pageSize int, seed int64) (*cluster.Cluster, error) {
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < nf; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: cpus})
	}
	return cluster.New(cluster.Config{Hosts: hosts, PageSize: pageSize, Seed: seed})
}

// placeThreads spreads t threads over fireflies 1..nf round-robin,
// approximately balanced as in §3.2.
func placeThreads(t, nf int) []cluster.HostID {
	slaves := make([]cluster.HostID, t)
	for i := range slaves {
		slaves[i] = cluster.HostID(1 + i%nf)
	}
	return slaves
}

// firefliesFor picks how many Fireflies serve t threads: the paper used
// one to four machines with balanced thread counts (≤4 per machine
// before adding another, capped at 4 machines).
func firefliesFor(t int) int {
	nf := (t + 3) / 4
	if nf < 1 {
		nf = 1
	}
	if nf > 4 {
		nf = 4
	}
	return nf
}
