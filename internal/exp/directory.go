package exp

// The §3.1 manager-scheme ablation the paper argues by hand: fixed
// distributed managers (the scheme Mermaid chose), a centralized
// manager, and Li & Hudak's dynamic distributed manager with
// probable-owner forwarding (the scheme §3.1 passed over). One
// migratory-sharing workload runs under all three directories and the
// per-scheme message counts — total, and the subset spent purely on
// locating owners — plus forwarding-chain statistics make the paper's
// qualitative choice quantitative.

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/sim"
)

// DirectorySchemeRow is one manager scheme's cost on the common
// migratory workload.
type DirectorySchemeRow struct {
	// Scheme names the directory ("fixed", "central", "dynamic").
	Scheme string
	// ElapsedS is the workload's simulated wall time.
	ElapsedS float64
	// Messages counts every protocol message sent cluster-wide.
	Messages int
	// DirMsgs counts the messages spent locating and brokering owners:
	// manager requests and serve orders under the fixed schemes,
	// request/forward/recovery traffic under the dynamic scheme.
	DirMsgs int
	// Fetches counts page bodies moved; Invals invalidations sent.
	Fetches int
	Invals  int
	// Forwards counts probable-owner hops (dynamic only); AvgHops is
	// hops per owner-served request and MaxChain the longest chase.
	Forwards int
	AvgHops  float64
	MaxChain int
}

// fixedDirKinds is the owner-locating traffic of the fixed and central
// schemes; dynDirKinds its dynamic-directory counterpart.
var fixedDirKinds = []proto.Kind{
	proto.KindGetPage, proto.KindGetPageWrite, proto.KindServeRequest, proto.KindOwnerUpdate,
}

var dynDirKinds = []proto.Kind{
	proto.KindDynGetPage, proto.KindDynGetPageWrite, proto.KindDynForward,
	proto.KindDynForwardAck, proto.KindDynRecover, proto.KindDynRecoverReply,
	proto.KindDynConfirm, proto.KindDynConfirmAck,
}

// DirectorySchemes runs the migratory workload under each directory
// scheme: 6 hosts, 24 one-KB pages, three rounds of rotating writers
// with trailing third-party readers — ownership keeps moving away from
// whatever the directory recorded, which is exactly what separates the
// schemes.
func DirectorySchemes() []DirectorySchemeRow {
	schemes := []struct {
		name string
		dir  dsm.Directory
	}{
		{"fixed", dsm.DirFixed},
		{"central", dsm.DirCentral},
		{"dynamic", dsm.DirDynamic},
	}
	out := make([]DirectorySchemeRow, 0, len(schemes))
	for _, s := range schemes {
		out = append(out, runDirectoryScheme(s.name, s.dir))
	}
	return out
}

func runDirectoryScheme(name string, dir dsm.Directory) DirectorySchemeRow {
	const (
		nf     = 5  // Firefly workers; host 0 is the Sun coordinator
		pages  = 24 // 1 KB pages
		per    = 256
		rounds = 3
	)
	pv := model.Default()
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < nf; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly})
	}
	c, err := cluster.New(cluster.Config{
		Hosts:     hosts,
		Seed:      1,
		PageSize:  1024,
		Params:    &pv,
		Directory: dir,
	})
	if err != nil {
		panic(err)
	}
	var elapsed sim.Duration
	c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
		addr, err := h0.DSM.Alloc(p, conv.Int32, per*pages)
		if err != nil {
			panic(err)
		}
		start := p.Now()
		buf := make([]int32, 8)
		for r := 0; r < rounds; r++ {
			for pg := 0; pg < pages; pg++ {
				base := addr + dsm.Addr(4*per*pg)
				writer := c.Hosts[(pg+r)%nf+1]
				for i := range buf {
					buf[i] = int32(100*r + pg + i)
				}
				writer.DSM.WriteInt32s(p, base, buf)
				reader := c.Hosts[(pg+r+2)%nf+1]
				var got [8]int32
				reader.DSM.ReadInt32s(p, base, got[:])
				for i := range got {
					if got[i] != buf[i] {
						panic(fmt.Sprintf("directory scheme %s: page %d round %d: read %d, want %d",
							name, pg, r, got[i], buf[i]))
					}
				}
			}
		}
		elapsed = p.Now().Sub(start)
	})
	total := c.TotalDSMStats()
	row := DirectorySchemeRow{
		Scheme:   name,
		ElapsedS: elapsed.Seconds(),
		Fetches:  total.PagesFetched,
		Invals:   total.InvalidationsSent,
		Forwards: total.Forwards,
		MaxChain: total.ChainMax,
	}
	for _, n := range total.Messages {
		row.Messages += n
	}
	dirKinds := fixedDirKinds
	if dir == dsm.DirDynamic {
		dirKinds = dynDirKinds
	}
	for _, k := range dirKinds {
		row.DirMsgs += total.Messages[k]
	}
	if total.ChainServes > 0 {
		row.AvgHops = float64(total.ChainHops) / float64(total.ChainServes)
	}
	return row
}

// OwnerForwarding runs the migratory workload under the dynamic
// directory alone — the benchmark entry for probable-owner forwarding.
func OwnerForwarding() DirectorySchemeRow {
	return runDirectoryScheme("dynamic", dsm.DirDynamic)
}

// DirectorySchemesTable renders the comparison for EXPERIMENTS.md and
// mermaid-bench.
func DirectorySchemesTable(rows []DirectorySchemeRow) *Table {
	t := &Table{
		Title:  "Manager schemes (§3.1): fixed vs central vs dynamic (probable-owner) directories",
		Header: []string{"scheme", "time (s)", "messages", "dir msgs", "fetches", "invals", "forwards", "avg hops", "max chain"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme,
			fmt.Sprintf("%.2f", r.ElapsedS),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%d", r.DirMsgs),
			fmt.Sprintf("%d", r.Fetches),
			fmt.Sprintf("%d", r.Invals),
			fmt.Sprintf("%d", r.Forwards),
			fmt.Sprintf("%.2f", r.AvgHops),
			fmt.Sprintf("%d", r.MaxChain),
		})
	}
	return t
}
