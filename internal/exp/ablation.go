package exp

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/sim"
)

// SyncStyleResult compares synchronizing through atomic operations on
// shared memory (a spinlock on a DSM word) with the distributed
// semaphore facility, validating §2.2's design rationale: "In practice
// … this would lead to repeated movement of (large) DSM pages between
// the hosts involved."
type SyncStyleResult struct {
	// SpinlockS and SemaphoreS are the run times of the same critical-
	// section workload under each style.
	SpinlockS, SemaphoreS float64
	// SpinlockTransfers and SemaphoreTransfers count page bodies moved.
	SpinlockTransfers, SemaphoreTransfers int
}

// SyncStyles runs `rounds` critical sections from each of four hosts,
// once with a test-and-set spinlock on a shared word and once with a
// distributed semaphore.
func SyncStyles(rounds int) SyncStyleResult {
	var out SyncStyleResult
	out.SpinlockS, out.SpinlockTransfers = runSyncStyle(rounds, true)
	out.SemaphoreS, out.SemaphoreTransfers = runSyncStyle(rounds, false)
	return out
}

func runSyncStyle(rounds int, spinlock bool) (float64, int) {
	hosts := []cluster.HostSpec{
		{Kind: arch.Sun},
		{Kind: arch.Firefly, CPUs: 2},
		{Kind: arch.Firefly, CPUs: 2},
		{Kind: arch.Sun},
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1})
	if err != nil {
		panic(err)
	}
	const (
		semDone  = 1
		semMutex = 2
	)
	c.DefineSemaphore(semDone, 0, 0)
	c.DefineSemaphore(semMutex, 0, 1)

	// The workers run as bare simulation processes (one per host); the
	// comparison is about synchronization traffic, not thread
	// scheduling. Work between critical sections keeps the lock's page
	// from staying parked on one host, as in any real mutual-exclusion
	// workload.
	var lockAddr, counterAddr dsm.Addr

	worker := func(h *cluster.Host, p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			p.Sleep(60 * time.Millisecond) // non-critical work
			if spinlock {
				// Test-and-set loop on a shared word: every attempt is
				// a write fault that steals the lock's page (§2.2's
				// "repeated movement of (large) DSM pages").
				for h.DSM.AtomicSwapInt32(p, lockAddr, 1) != 0 {
					p.Sleep(time.Millisecond) // backoff
				}
			} else {
				h.Sync.P(p, semMutex)
			}
			v := h.DSM.ReadInt32(p, counterAddr)
			p.Sleep(200 * time.Microsecond) // the critical section
			h.DSM.WriteInt32(p, counterAddr, v+1)
			if spinlock {
				h.DSM.AtomicSwapInt32(p, lockAddr, 0)
			} else {
				h.Sync.V(p, semMutex)
			}
		}
	}

	var elapsed sim.Duration
	elapsed = c.Run(0, func(p *sim.Proc, h *cluster.Host) {
		var err error
		// Page-filling allocations keep the lock word and the counter
		// on separate pages, isolating lock traffic from data traffic.
		lockAddr, err = h.DSM.Alloc(p, conv.Int32, 2048)
		if err != nil {
			panic(err)
		}
		counterAddr, err = h.DSM.Alloc(p, conv.Int32, 2048)
		if err != nil {
			panic(err)
		}
		h.DSM.WriteInt32(p, lockAddr, 0)
		h.DSM.WriteInt32(p, counterAddr, 0)

		done := sim.NewSemaphore(c.K, 0)
		for i := range hosts {
			host := c.Hosts[i]
			c.K.Spawn("sync-worker", func(wp *sim.Proc) {
				worker(host, wp)
				done.V()
			})
		}
		for range hosts {
			done.P(p)
		}
		if got := h.DSM.ReadInt32(p, counterAddr); got != int32(rounds*len(hosts)) {
			panic("sync-style workload lost updates")
		}
	})
	return elapsed.Seconds(), c.TotalDSMStats().PagesFetched
}

// ManagerPlacementResult compares the fixed distributed manager with a
// centralized manager on host 0 under a manager-heavy MM workload.
type ManagerPlacementResult struct {
	DistributedS, CentralS                 float64
	DistributedTransfers, CentralTransfers int
}

// ManagerPlacement isolates manager processing with a parallel fault
// storm: six Fireflies each own 60 pages (written first), then every
// Firefly reads its neighbour's pages concurrently. The owners are
// distributed either way, so the only serial resource that differs is
// manager processing — all on host 0 when centralized (Li's known
// central-manager bottleneck), spread across hosts when distributed
// (the paper's fixed distributed managers).
func ManagerPlacement() ManagerPlacementResult {
	run := func(central bool) (float64, int) {
		const (
			nf       = 6
			pagesPer = 60
		)
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < nf; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: 2})
		}
		// 1 KB pages keep the shared wire unsaturated so manager
		// processing — the resource under study — dominates, and
		// per-request jitter breaks the deterministic lockstep that
		// would otherwise let one manager pipeline the request waves.
		pv := model.Default()
		pv.ProcessJitterPct = 0.25
		c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1, CentralManager: central, PageSize: 1024, Params: &pv})
		if err != nil {
			panic(err)
		}
		var storm sim.Duration
		c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
			const per = 256 // ints per 1 KB page
			addr, err := h0.DSM.Alloc(p, conv.Int32, per*pagesPer*nf)
			if err != nil {
				panic(err)
			}
			// Ownership setup: Firefly i takes its own block.
			spawnPerHost(c, p, func(h *cluster.Host, wp *sim.Proc) {
				if h.ID == 0 {
					return
				}
				base := addr + dsm.Addr(4*per*pagesPer*(int(h.ID)-1))
				buf := make([]int32, per)
				for pg := 0; pg < pagesPer; pg++ {
					h.DSM.WriteInt32s(wp, base+dsm.Addr(4*per*pg), buf)
				}
			})
			// The storm: every Firefly runs two reader streams over its
			// two neighbours' blocks (12 concurrent fault streams).
			start := p.Now()
			done := sim.NewSemaphore(c.K, 0)
			streams := 0
			for hid := 1; hid <= nf; hid++ {
				h := c.Hosts[hid]
				for lane := 1; lane <= 2; lane++ {
					neighbour := (int(h.ID)-1+lane)%nf + 1
					base := addr + dsm.Addr(4*per*pagesPer*(neighbour-1))
					streams++
					c.K.Spawn("storm", func(wp *sim.Proc) {
						buf := make([]int32, per)
						for pg := 0; pg < pagesPer; pg++ {
							h.DSM.ReadInt32s(wp, base+dsm.Addr(4*per*pg), buf)
						}
						done.V()
					})
				}
			}
			for i := 0; i < streams; i++ {
				done.P(p)
			}
			storm = p.Now().Sub(start)
		})
		return storm.Seconds(), c.TotalDSMStats().PagesFetched
	}
	var out ManagerPlacementResult
	out.DistributedS, out.DistributedTransfers = run(false)
	out.CentralS, out.CentralTransfers = run(true)
	return out
}

// InvalidationRow measures one write fault that must invalidate a
// copyset of the given size, under broadcast multicast (the paper's
// §2.2 mechanism) and under per-member unicast (ablation).
type InvalidationRow struct {
	// Copyset is the number of read replicas invalidated.
	Copyset int
	// BroadcastMS and UnicastMS are the write-fault delays.
	BroadcastMS, UnicastMS float64
	// BroadcastFrames and UnicastFrames count wire frames during the
	// invalidating write.
	BroadcastFrames, UnicastFrames int
}

// InvalidationScaling measures invalidation cost against copyset size.
func InvalidationScaling(sizes []int) []InvalidationRow {
	measure := func(copyset int, unicast bool) (float64, int) {
		hosts := make([]cluster.HostSpec, copyset+2)
		for i := range hosts {
			hosts[i] = cluster.HostSpec{Kind: arch.Sun}
		}
		c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1, UnicastInvalidate: unicast})
		if err != nil {
			panic(err)
		}
		var ms float64
		var frames int
		c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
			addr, err := h0.DSM.Alloc(p, conv.Int32, 2048)
			if err != nil {
				panic(err)
			}
			h0.DSM.WriteInt32s(p, addr, make([]int32, 2048))
			var v [1]int32
			for i := 0; i < copyset; i++ {
				c.Hosts[1+i].DSM.ReadInt32s(p, addr, v[:])
			}
			writer := c.Hosts[copyset+1]
			framesBefore := c.Net.Stats().FramesSent
			start := p.Now()
			writer.DSM.WriteInt32s(p, addr, []int32{1})
			ms = float64(p.Now().Sub(start)) / float64(time.Millisecond)
			frames = c.Net.Stats().FramesSent - framesBefore
		})
		return ms, frames
	}
	var rows []InvalidationRow
	for _, n := range sizes {
		row := InvalidationRow{Copyset: n}
		row.BroadcastMS, row.BroadcastFrames = measure(n, false)
		row.UnicastMS, row.UnicastFrames = measure(n, true)
		rows = append(rows, row)
	}
	return rows
}

// InvalidationTable formats the invalidation-scaling comparison.
func InvalidationTable(rows []InvalidationRow) *Table {
	t := &Table{
		Title:  "Write invalidation vs copyset size: broadcast multicast (§2.2) vs unicast",
		Header: []string{"copyset", "broadcast ms", "unicast ms", "broadcast frames", "unicast frames"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Copyset),
			fmt.Sprintf("%.1f", r.BroadcastMS),
			fmt.Sprintf("%.1f", r.UnicastMS),
			fmt.Sprintf("%d", r.BroadcastFrames),
			fmt.Sprintf("%d", r.UnicastFrames),
		})
	}
	return t
}
