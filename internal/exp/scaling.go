package exp

// The directory ablation of §3.1 at scale: the fixed, central and
// dynamic manager schemes on clusters two orders of magnitude beyond
// the paper's five hosts, on both the paper's one-segment bus and a
// switched multi-segment topology (32-host segments star-linked through
// a backbone). The workload has three phases chosen to exercise exactly
// what separates the schemes as N grows: a metadata broadcast (alloc),
// a migratory ring where every host writes once (ownership keeps moving
// away from whatever the directory recorded), and a full-copyset
// read-then-invalidate (every host holds a copy of one page when a
// single writer kills them all — the multicast-tree stress).

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ScalingRow is one (cluster size, topology, scheme) cell of the
// directory-scaling ablation.
type ScalingRow struct {
	// Hosts is the cluster size.
	Hosts int
	// Topo names the network shape ("bus" or "switched").
	Topo string
	// Scheme names the directory ("fixed", "central", "dynamic").
	Scheme string
	// ElapsedS is the workload's simulated wall time.
	ElapsedS float64
	// Messages counts every protocol message sent cluster-wide;
	// MsgsPerHost normalizes it by cluster size.
	Messages    int
	MsgsPerHost float64
	// MaxChain is the longest probable-owner forwarding chase
	// (dynamic scheme only).
	MaxChain int
	// CrossSegFrames counts inter-segment link traversals (0 on the
	// bus) — the number the multicast trees exist to keep small.
	CrossSegFrames int
}

// scalingTopology builds the switched shape for an N-host run: 32-host
// segments (at least two segments) star-linked through segment 0.
func scalingTopology(hosts int) *netsim.Topology {
	segs := hosts / 32
	if segs < 2 {
		segs = 2
	}
	per := (hosts + segs - 1) / segs
	return netsim.SwitchedStar(segs, per)
}

// DirectoryScaling runs the three directory schemes at each cluster
// size on both topologies. Sizes beyond a few hundred hosts are the
// nightly configuration; the smoke sweep stops at 256.
func DirectoryScaling(sizes []int) []ScalingRow {
	schemes := []struct {
		name string
		dir  dsm.Directory
	}{
		{"fixed", dsm.DirFixed},
		{"central", dsm.DirCentral},
		{"dynamic", dsm.DirDynamic},
	}
	var out []ScalingRow
	for _, n := range sizes {
		for _, topo := range []string{"bus", "switched"} {
			var t *netsim.Topology
			if topo == "switched" {
				t = scalingTopology(n)
			}
			for _, s := range schemes {
				out = append(out, runDirectoryScale(n, topo, t, s.name, s.dir))
			}
		}
	}
	return out
}

func runDirectoryScale(n int, topoName string, topo *netsim.Topology, scheme string, dir dsm.Directory) ScalingRow {
	const (
		pages = 8
		per   = 256 // int32s per 1 KB page
	)
	pv := model.Default()
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 1; i < n; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly})
	}
	c, err := cluster.New(cluster.Config{
		Hosts:     hosts,
		Seed:      1,
		PageSize:  1024,
		Params:    &pv,
		Directory: dir,
		Topology:  topo,
	})
	if err != nil {
		panic(err)
	}
	var elapsed sim.Duration
	c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
		addr, err := h0.DSM.Alloc(p, conv.Int32, per*pages)
		if err != nil {
			panic(err)
		}
		start := p.Now()
		// Phase 1 — migratory ring: every host writes one word to a
		// rotating page (pages 1..7; page 0 stays clean for phase 2),
		// so ownership never sits where the directory last recorded it.
		for i := 1; i < n; i++ {
			base := addr + dsm.Addr(4*per*(1+i%(pages-1)))
			c.Hosts[i].DSM.WriteInt32(p, base, int32(i))
		}
		// Phase 2 — full-copyset read: every host reads page 0, growing
		// its copyset to the whole cluster.
		hot := addr
		for i := 1; i < n; i++ {
			if got := c.Hosts[i].DSM.ReadInt32(p, hot); got != 0 {
				panic(fmt.Sprintf("scaling %s/%s: host %d read %d from hot page, want 0", scheme, topoName, i, got))
			}
		}
		// Phase 3 — one write invalidates them all: the multicast tree
		// (or the bus broadcast) carries one invalidation to N-1 copies.
		c.Hosts[1].DSM.WriteInt32(p, hot, 42)
		if got := c.Hosts[n-1].DSM.ReadInt32(p, hot); got != 42 {
			panic(fmt.Sprintf("scaling %s/%s: stale read %d after invalidation, want 42", scheme, topoName, got))
		}
		elapsed = p.Now().Sub(start)
	})
	total := c.TotalDSMStats()
	row := ScalingRow{
		Hosts:          n,
		Topo:           topoName,
		Scheme:         scheme,
		ElapsedS:       elapsed.Seconds(),
		MaxChain:       total.ChainMax,
		CrossSegFrames: c.Net.Stats().CrossSegmentFrames,
	}
	for _, m := range total.Messages {
		row.Messages += m
	}
	row.MsgsPerHost = float64(row.Messages) / float64(n)
	return row
}

// DirectoryScalingTable renders the scaling ablation for EXPERIMENTS.md
// and mermaid-bench.
func DirectoryScalingTable(rows []ScalingRow) *Table {
	t := &Table{
		Title:  "Directory schemes at scale (§3.1 extended): bus vs switched topology",
		Header: []string{"hosts", "topology", "scheme", "time (s)", "messages", "msgs/host", "max chain", "cross-seg frames"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Hosts),
			r.Topo,
			r.Scheme,
			fmt.Sprintf("%.2f", r.ElapsedS),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.1f", r.MsgsPerHost),
			fmt.Sprintf("%d", r.MaxChain),
			fmt.Sprintf("%d", r.CrossSegFrames),
		})
	}
	return t
}
