package exp

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// Table1Row is one cell of Table 1 (page fault handling cost).
type Table1Row struct {
	Kind    arch.Kind
	Write   bool
	MS      float64
	PaperMS float64
}

// Table1 reports the basic page-fault handling costs. These are the
// calibration *inputs* of the model (fitted directly to the paper's
// Table 1), measured back out of a minimal fault to confirm the system
// charges them faithfully.
func Table1() []Table1Row {
	paper := map[string]float64{
		"Sun-r": 1.98, "Sun-w": 2.04, "Ffly-r": 6.80, "Ffly-w": 6.70,
	}
	var rows []Table1Row
	p := model.Default()
	for _, kind := range []arch.Kind{arch.Sun, arch.Firefly} {
		for _, write := range []bool{false, true} {
			cost := p.FaultRead.Of(kind)
			key := kindName(kind) + "-r"
			if write {
				cost = p.FaultWrite.Of(kind)
				key = kindName(kind) + "-w"
			}
			rows = append(rows, Table1Row{
				Kind:    kind,
				Write:   write,
				MS:      float64(cost) / float64(time.Millisecond),
				PaperMS: paper[key],
			})
		}
	}
	return rows
}

// Table1Table formats Table 1.
func Table1Table() *Table {
	t := &Table{
		Title:  "Table 1: Costs of page fault handling (ms)",
		Header: []string{"host", "op", "simulated", "paper"},
	}
	for _, r := range Table1() {
		op := "read"
		if r.Write {
			op = "write"
		}
		t.Rows = append(t.Rows, []string{
			kindName(r.Kind), op,
			fmt.Sprintf("%.2f", r.MS), fmt.Sprintf("%.2f", r.PaperMS),
		})
	}
	return t
}

// Table2Row is one cell of Table 2 (page transfer cost).
type Table2Row struct {
	From, To arch.Kind
	Size     int
	MS       float64
	PaperMS  float64
}

// Table2 measures the one-way cost of transferring 8 KB and 1 KB pages
// between each pair of machine types, exactly as the paper's Table 2:
// the transfer alone, without fault handling or conversion.
func Table2() []Table2Row {
	paper := map[string]float64{
		"Sun-Sun-8192": 18, "Sun-Ffly-8192": 27, "Ffly-Sun-8192": 25, "Ffly-Ffly-8192": 33,
		"Sun-Sun-1024": 5.1, "Sun-Ffly-1024": 7.6, "Ffly-Sun-1024": 7.3, "Ffly-Ffly-1024": 6.7,
	}
	var rows []Table2Row
	for _, size := range []int{8192, 1024} {
		for _, from := range []arch.Kind{arch.Sun, arch.Firefly} {
			for _, to := range []arch.Kind{arch.Sun, arch.Firefly} {
				ms := measureTransfer(from, to, size)
				key := fmt.Sprintf("%s-%s-%d", kindName(from), kindName(to), size)
				rows = append(rows, Table2Row{
					From: from, To: to, Size: size,
					MS: ms, PaperMS: paper[key],
				})
			}
		}
	}
	return rows
}

// measureTransfer times one bulk page movement between two fresh hosts.
func measureTransfer(from, to arch.Kind, size int) float64 {
	k := sim.NewKernel(1)
	params := model.Default()
	net := netsim.New(k, &params)
	ifc0, _ := net.Attach(0)
	ifc1, _ := net.Attach(1)
	src := remoteop.New(k, ifc0, from, &params)
	dst := remoteop.New(k, ifc1, to, &params)
	var done sim.Time
	dst.Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		done = p.Now()
	})
	src.Start()
	dst.Start()
	var start sim.Time
	k.Spawn("sender", func(p *sim.Proc) {
		start = p.Now()
		src.SendOneWay(p, 1, &proto.Message{Kind: proto.KindEcho, Data: make([]byte, size)})
	})
	k.Run()
	return float64(done.Sub(start)) / float64(time.Millisecond)
}

// Table2Table formats Table 2.
func Table2Table() *Table {
	t := &Table{
		Title:  "Table 2: Cost of transferring a page (ms)",
		Header: []string{"from", "to", "size", "simulated", "paper"},
	}
	for _, r := range Table2() {
		t.Rows = append(t.Rows, []string{
			kindName(r.From), kindName(r.To), fmt.Sprintf("%dB", r.Size),
			fmt.Sprintf("%.1f", r.MS), fmt.Sprintf("%.1f", r.PaperMS),
		})
	}
	return t
}

// Table3Row is one cell of Table 3 (data conversion cost).
type Table3Row struct {
	TypeName string
	Size     int
	MS       float64
	PaperMS  float64
}

// Table3 reports the cost of converting a full page of each basic type
// on a Firefly, plus the compound-record case measured on a Sun in
// §3.1. The conversion itself is executed for real (byte swaps, VAX
// float encoding) on a page of representative values; the reported time
// is the calibrated virtual cost the DSM charges for it.
func Table3() []Table3Row {
	paper8 := map[string]float64{"int": 10.9, "short": 11.0, "float": 21.6, "double": 28.9}
	paper1 := map[string]float64{"int": 1.3, "short": 1.3, "float": 2.7, "double": 3.6}
	params := model.Default()
	reg := conv.NewRegistry()

	var rows []Table3Row
	for _, size := range []int{8192, 1024} {
		for _, id := range []conv.TypeID{conv.Int32, conv.Int16, conv.Float32, conv.Float64} {
			typ := reg.MustGet(id)
			buf := makeTypedPage(typ, size)
			n := size / typ.Size
			if _, err := reg.ConvertRegion(id, buf, arch.SunArch, arch.FireflyArch, 0); err != nil {
				panic(err)
			}
			cost := params.RegionConvertCost(arch.Firefly, typ.Cost, n)
			paper := paper8[typ.Name]
			if size == 1024 {
				paper = paper1[typ.Name]
			}
			rows = append(rows, Table3Row{
				TypeName: typ.Name, Size: size,
				MS:      float64(cost) / float64(time.Millisecond),
				PaperMS: paper,
			})
		}
	}

	// The §3.1 compound record: 3 ints, 3 floats, 4 shorts; 8 KB page
	// converted on a Sun3/60 took 19.6 ms.
	recID, err := reg.RegisterStruct("record", []conv.Field{
		{Type: conv.Int32, Count: 3},
		{Type: conv.Float32, Count: 3},
		{Type: conv.Int16, Count: 4},
	})
	if err != nil {
		panic(err)
	}
	rec := reg.MustGet(recID)
	n := 8192 / rec.Size
	buf := makeTypedPage(rec, n*rec.Size)
	if _, err := reg.ConvertRegion(recID, buf, arch.FireflyArch, arch.SunArch, 0); err != nil {
		panic(err)
	}
	cost := params.RegionConvertCost(arch.Sun, rec.Cost, n)
	rows = append(rows, Table3Row{
		TypeName: "record (on Sun)", Size: 8192,
		MS:      float64(cost) / float64(time.Millisecond),
		PaperMS: 19.6,
	})
	return rows
}

// makeTypedPage fills a buffer with representative values of the type.
func makeTypedPage(t *conv.Type, size int) []byte {
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i*31 + 7)
	}
	return buf
}

// Table3Table formats Table 3.
func Table3Table() *Table {
	t := &Table{
		Title:  "Table 3: Costs of data conversions (ms)",
		Header: []string{"type", "page", "simulated", "paper"},
	}
	for _, r := range Table3() {
		t.Rows = append(t.Rows, []string{
			r.TypeName, fmt.Sprintf("%dB", r.Size),
			fmt.Sprintf("%.1f", r.MS), fmt.Sprintf("%.1f", r.PaperMS),
		})
	}
	return t
}

// Table4Row is one cell of Table 4 (end-to-end fault delay).
type Table4Row struct {
	// Pair is the paper's column label: owner kind → requester kind.
	Pair string
	// Scenario is R/M→O, R→M/O or R→M→O.
	Scenario string
	Write    bool
	MS       float64
	PaperMS  float64
}

// Table4 measures end-to-end 8 KB page fault delays under the paper's
// manager/owner placements. Conversion (integers) is included when the
// requester and owner differ in type, as in the paper.
func Table4() []Table4Row {
	type cfg struct {
		pair     string
		req, own arch.Kind
	}
	pairs := []cfg{
		{pair: "Sun→Sun", req: arch.Sun, own: arch.Sun},
		{pair: "Ffly→Sun", req: arch.Sun, own: arch.Firefly},
		{pair: "Sun→Ffly", req: arch.Firefly, own: arch.Sun},
		{pair: "Ffly→Ffly", req: arch.Firefly, own: arch.Firefly},
	}
	paper := map[string][2]float64{ // scenario|pair → read, write
		"R/M→O|Sun→Sun":   {26.4, 26.7},
		"R/M→O|Ffly→Sun":  {47.7, 48.3},
		"R/M→O|Sun→Ffly":  {56.3, 47.8},
		"R/M→O|Ffly→Ffly": {46.5, 46.4},
		"R→M/O|Sun→Sun":   {29.6, 27.9},
		"R→M/O|Ffly→Sun":  {50.9, 51.6},
		"R→M/O|Sun→Ffly":  {58.6, 59.4},
		"R→M/O|Ffly→Ffly": {49.6, 49.1},
		"R→M→O|Sun→Sun":   {31.7, 31.3},
		"R→M→O|Ffly→Sun":  {54.7, 55.5},
		"R→M→O|Sun→Ffly":  {61.9, 61.3},
		"R→M→O|Ffly→Ffly": {54.4, 53.6},
	}
	var rows []Table4Row
	for _, scenario := range []string{"R/M→O", "R→M/O", "R→M→O"} {
		for _, pc := range pairs {
			for _, write := range []bool{false, true} {
				ms := measureFaultDelay(pc.req, pc.own, scenario, write)
				vals := paper[scenario+"|"+pc.pair]
				want := vals[0]
				if write {
					want = vals[1]
				}
				rows = append(rows, Table4Row{
					Pair: pc.pair, Scenario: scenario, Write: write,
					MS: ms, PaperMS: want,
				})
			}
		}
	}
	return rows
}

// measureFaultDelay builds a 4-host cluster, moves ownership of a full
// 8 KB integer page to the owner host, then times one fault on the
// requester under the given manager placement.
func measureFaultDelay(reqKind, ownKind arch.Kind, scenario string, write bool) float64 {
	kinds := []arch.Kind{arch.Sun, reqKind, arch.Sun, ownKind}
	var mgrHost int
	switch scenario {
	case "R/M→O":
		mgrHost = 1
	case "R→M/O":
		mgrHost = 3
	case "R→M→O":
		mgrHost = 2
	default:
		panic("exp: unknown scenario " + scenario)
	}
	specs := make([]cluster.HostSpec, len(kinds))
	for i, kd := range kinds {
		specs[i] = cluster.HostSpec{Kind: kd}
		if kd == arch.Firefly {
			specs[i].CPUs = 4
		}
	}
	c, err := cluster.New(cluster.Config{Hosts: specs, Seed: 1})
	if err != nil {
		panic(err)
	}
	var delayMS float64
	c.Run(0, func(p *sim.Proc, h *cluster.Host) {
		var addr dsm.Addr
		for {
			a, err := h.DSM.Alloc(p, conv.Int32, 2048)
			if err != nil {
				panic(err)
			}
			if int(h.DSM.PageOf(a))%len(kinds) == mgrHost {
				addr = a
				break
			}
		}
		owner := c.Hosts[3]
		owner.DSM.WriteInt32s(p, addr, make([]int32, 2048))
		p.Sleep(time.Second) // let confirmations drain
		req := c.Hosts[1]
		start := p.Now()
		if write {
			req.DSM.WriteInt32s(p, addr, []int32{1})
		} else {
			var v [1]int32
			req.DSM.ReadInt32s(p, addr, v[:])
		}
		delayMS = float64(p.Now().Sub(start)) / float64(time.Millisecond)
	})
	return delayMS
}

// Table4Table formats Table 4.
func Table4Table() *Table {
	t := &Table{
		Title:  "Table 4: End-to-end page fault delays for 8 KB pages (ms)",
		Header: []string{"scenario", "owner→requester", "op", "simulated", "paper"},
	}
	for _, r := range Table4() {
		op := "R"
		if r.Write {
			op = "W"
		}
		t.Rows = append(t.Rows, []string{
			r.Scenario, r.Pair, op,
			fmt.Sprintf("%.1f", r.MS), fmt.Sprintf("%.1f", r.PaperMS),
		})
	}
	return t
}
