package exp

import "testing"

// TestDirectorySchemesInvariants pins the structure of the §3.1
// manager-scheme ablation: the schemes differ only in how owners are
// located, never in the page traffic itself, and the dynamic scheme's
// forwarding stays within Li & Hudak's chain bound.
func TestDirectorySchemesInvariants(t *testing.T) {
	rows := DirectorySchemes()
	if len(rows) != 3 {
		t.Fatalf("got %d schemes, want 3", len(rows))
	}
	byName := map[string]DirectorySchemeRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	fixed, central, dynamic := byName["fixed"], byName["central"], byName["dynamic"]

	// Page traffic is scheme-independent: every scheme moves the same
	// bodies for the same workload.
	if fixed.Fetches == 0 || central.Fetches != fixed.Fetches || dynamic.Fetches != fixed.Fetches {
		t.Errorf("fetches differ across schemes: fixed=%d central=%d dynamic=%d",
			fixed.Fetches, central.Fetches, dynamic.Fetches)
	}

	// Forwarding exists only under the dynamic directory, and its
	// chains respect Li & Hudak's N-1 bound (6 hosts here).
	if fixed.Forwards != 0 || central.Forwards != 0 {
		t.Errorf("fixed/central schemes forwarded: fixed=%d central=%d", fixed.Forwards, central.Forwards)
	}
	if dynamic.Forwards == 0 {
		t.Error("dynamic scheme never forwarded; the workload is not migratory enough to exercise hint chains")
	}
	if dynamic.MaxChain > 5 {
		t.Errorf("dynamic chain reached %d hops, above the N-1=5 bound", dynamic.MaxChain)
	}

	// The owner-location overhead is the ablation's point: the dynamic
	// scheme spends strictly more directory messages than the fixed
	// scheme on this migratory pattern.
	if dynamic.DirMsgs <= fixed.DirMsgs {
		t.Errorf("dynamic dir msgs %d not above fixed %d", dynamic.DirMsgs, fixed.DirMsgs)
	}
}
