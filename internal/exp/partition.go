package exp

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// PartitionAvailabilityRow measures one replication engine's behavior
// while a 5 s partition cuts off a replica-holding host: how many
// operations the majority component completed while the cut was open.
type PartitionAvailabilityRow struct {
	// Policy names the engine.
	Policy string
	// CoordReads counts coordinator (host 0) page reads that completed
	// inside the partition window.
	CoordReads int
	// Writes counts majority-side writer operations that completed
	// inside the window.
	Writes int
	// Errors counts majority-side operations that *failed* inside the
	// window (e.g. a page whose only copy is stranded on the cut host).
	Errors int
}

// PartitionAvailability runs the same workload under every replication
// engine: two writers (hosts 2, 3) each updating their own page every
// 100 ms, the coordinator (host 0) polling both pages every 100 ms,
// and host 1 — which read both pages just before the cut, so it holds
// a fresh replica (and, under migration, the only copy) — partitioned
// away for the 5 s window [1 s, 6 s). Failure detection is on, so
// engines that block on the unreachable replica-holder resume once the
// detector declares it dead (~2 s of silence); the quorum engine never
// blocks because a majority of replicas stays reachable throughout.
func PartitionAvailability() []PartitionAvailabilityRow {
	const (
		cutFrom = 1 * time.Second
		cutTo   = 6 * time.Second
		horizon = 7 * time.Second
		period  = 100 * time.Millisecond
		// Writers and coordinator go quiet around the cut onset while
		// the victim re-reads both pages: whatever engine-specific state
		// a reader acquires (a copyset entry, update membership, or —
		// under migration — the only copy itself) is guaranteed to still
		// be on the victim when the cut lands, instead of being
		// invalidated or migrated back by a later majority-side op.
		quietFrom = cutFrom - 100*time.Millisecond
		quietTo   = cutFrom + 100*time.Millisecond
	)
	policies := []struct {
		name string
		pol  dsm.Policy
	}{
		{"mrsw", dsm.PolicyMRSW},
		{"migration", dsm.PolicyMigration},
		{"central", dsm.PolicyCentral},
		{"update", dsm.PolicyUpdate},
		{"quorum", dsm.PolicyQuorum},
	}
	var rows []PartitionAvailabilityRow
	for _, pc := range policies {
		row := PartitionAvailabilityRow{Policy: pc.name}
		plan := &netsim.FaultPlan{
			Partitions: []netsim.Partition{{
				Window: netsim.Window{From: sim.Time(cutFrom), Until: sim.Time(cutTo)},
				Group:  []netsim.HostID{1},
			}},
		}
		c, err := cluster.New(cluster.Config{
			Hosts: []cluster.HostSpec{
				{Kind: arch.Sun},
				{Kind: arch.Firefly},
				{Kind: arch.Sun},
				{Kind: arch.Firefly},
				{Kind: arch.Sun},
			},
			Seed:             1,
			Policy:           pc.pol,
			CentralManager:   true,
			FailureDetection: true,
			FaultPlan:        plan,
		})
		if err != nil {
			panic(err)
		}
		inWindow := func() bool {
			now := c.K.Now()
			return now >= sim.Time(cutFrom) && now < sim.Time(cutTo)
		}
		quiet := func(p *sim.Proc) {
			if now := c.K.Now(); now >= sim.Time(quietFrom) && now < sim.Time(quietTo) {
				p.Sleep(time.Duration(sim.Time(quietTo).Sub(now)))
			}
		}
		c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
			var pages [2]dsm.Addr
			for i := range pages {
				if pages[i], err = h0.DSM.Alloc(p, conv.Int32, 2); err != nil {
					panic(err)
				}
			}
			done := sim.NewSemaphore(c.K, 0)
			for w := 0; w < 2; w++ {
				w := w
				host := c.Hosts[w+2]
				c.K.Spawn(fmt.Sprintf("avail-writer%d", w), func(wp *sim.Proc) {
					defer done.V()
					for i := int32(1); c.K.Now() < sim.Time(horizon); i++ {
						quiet(wp)
						err := host.DSM.WriteInt32sE(wp, pages[w], []int32{i, i})
						if inWindow() {
							if err == nil {
								row.Writes++
							} else {
								row.Errors++
							}
						}
						wp.Sleep(period)
					}
				})
			}
			// The victim seeds its replicas right up to the cut: under
			// MRSW/update it joins both copysets (so in-window writes
			// must invalidate or update an unreachable host), and under
			// migration it walks away with the only copy.
			c.K.Spawn("avail-victim", func(vp *sim.Proc) {
				defer done.V()
				vp.Sleep(quietFrom)
				for c.K.Now() < sim.Time(cutFrom) {
					for w := 0; w < 2; w++ {
						var pair [2]int32
						_ = c.Hosts[1].DSM.ReadInt32sE(vp, pages[w], pair[:])
					}
					// A cached re-read costs no virtual time; tick the
					// clock so the loop terminates at the cut.
					vp.Sleep(5 * time.Millisecond)
				}
			})
			for c.K.Now() < sim.Time(horizon) {
				quiet(p)
				for w := 0; w < 2; w++ {
					var pair [2]int32
					err := h0.DSM.ReadInt32sE(p, pages[w], pair[:])
					if inWindow() {
						if err == nil {
							row.CoordReads++
						} else {
							row.Errors++
						}
					}
				}
				p.Sleep(period)
			}
			for i := 0; i < 3; i++ {
				done.P(p)
			}
		})
		rows = append(rows, row)
	}
	return rows
}

// PartitionAvailabilityTable formats the rows.
func PartitionAvailabilityTable(rows []PartitionAvailabilityRow) *Table {
	t := &Table{
		Title:  "Partition availability (§3.4 extension): majority-side ops completed during a 5 s cut of a replica holder",
		Header: []string{"engine", "coord reads", "writes", "errors"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.CoordReads),
			fmt.Sprintf("%d", r.Writes),
			fmt.Sprintf("%d", r.Errors),
		})
	}
	return t
}
