package conv

// Automatic generation of conversion routines. The paper's §5 reports
// work in progress on generating conversion routines at compile time
// from the program's type declarations, instead of having programmers
// compose them by hand. This file is that feature's Go analogue: the
// field list — and with it the composed conversion routine — is derived
// from a Go struct type at setup time.
//
// The mapping honours the scheme's constraints (§2.3): every field must
// be one of the fixed-size basic types (or a nested struct/array of
// them), so that the type has the same size and field order on every
// host. Pointers to DSM data are declared with the Ptr marker type.

import (
	"fmt"
	"reflect"
)

// Ptr is the marker type for a DSM pointer field inside an
// auto-registered struct: a 32-bit shared-memory address that is rebased
// when the page converts.
type Ptr uint32

var ptrType = reflect.TypeOf(Ptr(0))

// RegisterGoStruct derives the field list of a compound DSM type from a
// Go struct type and registers it under the struct's name. Supported
// field types: int8/uint8 (characters), int16/uint16, int32/uint32,
// float32, float64, Ptr, fixed-size arrays of these, and nested structs
// of supported fields. Field order follows the Go declaration, as the
// paper requires matching declarations across hosts.
func (r *Registry) RegisterGoStruct(t reflect.Type) (TypeID, error) {
	if t.Kind() != reflect.Struct {
		return Invalid, fmt.Errorf("conv: %v is not a struct", t)
	}
	fields, err := r.fieldsOf(t)
	if err != nil {
		return Invalid, err
	}
	name := t.Name()
	if name == "" {
		name = t.String()
	}
	return r.RegisterStruct(name, fields)
}

// fieldsOf recursively flattens a Go struct type into DSM fields.
func (r *Registry) fieldsOf(t reflect.Type) ([]Field, error) {
	var fields []Field
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		fs, err := r.fieldOf(f.Type)
		if err != nil {
			return nil, fmt.Errorf("field %s: %w", f.Name, err)
		}
		fields = append(fields, fs...)
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("struct %v has no convertible fields", t)
	}
	return fields, nil
}

func (r *Registry) fieldOf(t reflect.Type) ([]Field, error) {
	if t == ptrType {
		return []Field{{Type: Pointer, Count: 1}}, nil
	}
	switch t.Kind() {
	case reflect.Int8, reflect.Uint8:
		return []Field{{Type: Char, Count: 1}}, nil
	case reflect.Int16, reflect.Uint16:
		return []Field{{Type: Int16, Count: 1}}, nil
	case reflect.Int32, reflect.Uint32:
		return []Field{{Type: Int32, Count: 1}}, nil
	case reflect.Float32:
		return []Field{{Type: Float32, Count: 1}}, nil
	case reflect.Float64:
		return []Field{{Type: Float64, Count: 1}}, nil
	case reflect.Array:
		inner, err := r.fieldOf(t.Elem())
		if err != nil {
			return nil, err
		}
		// An array of a single basic field scales its count; an array
		// of a compound element repeats the whole element sequence.
		if len(inner) == 1 {
			inner[0].Count *= t.Len()
			return inner, nil
		}
		var out []Field
		for i := 0; i < t.Len(); i++ {
			out = append(out, inner...)
		}
		return out, nil
	case reflect.Struct:
		return r.fieldsOf(t)
	default:
		return nil, fmt.Errorf("unsupported field kind %v (DSM types need fixed sizes on every host: use int8/16/32, uint8/16/32, float32/64, conv.Ptr, arrays, or nested structs)", t.Kind())
	}
}
