package conv

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

var (
	sun = arch.SunArch
	ffy = arch.FireflyArch
)

func TestInt32RegionSunToFirefly(t *testing.T) {
	r := NewRegistry()
	// 0x01020304 on the Sun (big-endian).
	buf := []byte{0x01, 0x02, 0x03, 0x04, 0x00, 0x00, 0x00, 0x2a}
	rep, err := r.ConvertRegion(Int32, buf, sun, ffy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elements != 2 {
		t.Fatalf("converted %d elements, want 2", rep.Elements)
	}
	if GetInt32(ffy, buf[0:4]) != 0x01020304 {
		t.Fatalf("value 0 = %#x, want 0x01020304", GetInt32(ffy, buf[0:4]))
	}
	if GetInt32(ffy, buf[4:8]) != 42 {
		t.Fatalf("value 1 = %d, want 42", GetInt32(ffy, buf[4:8]))
	}
}

func TestInt16RegionBothDirections(t *testing.T) {
	r := NewRegistry()
	buf := make([]byte, 4)
	PutInt16(sun, buf[0:2], -1234)
	PutInt16(sun, buf[2:4], 31000)
	if _, err := r.ConvertRegion(Int16, buf, sun, ffy, 0); err != nil {
		t.Fatal(err)
	}
	if GetInt16(ffy, buf[0:2]) != -1234 || GetInt16(ffy, buf[2:4]) != 31000 {
		t.Fatal("sun->firefly int16 conversion wrong")
	}
	if _, err := r.ConvertRegion(Int16, buf, ffy, sun, 0); err != nil {
		t.Fatal(err)
	}
	if GetInt16(sun, buf[0:2]) != -1234 || GetInt16(sun, buf[2:4]) != 31000 {
		t.Fatal("firefly->sun int16 conversion wrong")
	}
}

func TestCharRegionIsIdentity(t *testing.T) {
	r := NewRegistry()
	buf := []byte("hello, heterogeneous world")
	orig := bytes.Clone(buf)
	if _, err := r.ConvertRegion(Char, buf, sun, ffy, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("character data was altered by conversion")
	}
}

func TestCompatibleArchesNoOp(t *testing.T) {
	r := NewRegistry()
	buf := []byte{1, 2, 3, 4}
	orig := bytes.Clone(buf)
	rep, err := r.ConvertRegion(Int32, buf, sun, sun, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elements != 0 || !bytes.Equal(buf, orig) {
		t.Fatal("same-architecture conversion not a no-op")
	}
}

func TestFloat32RegionRoundTrip(t *testing.T) {
	r := NewRegistry()
	values := []float32{1.5, -2.25, 0, 1e10, -3.14159e-10}
	buf := make([]byte, 4*len(values))
	for i, v := range values {
		PutFloat32(sun, buf[i*4:], v)
	}
	if _, err := r.ConvertRegion(Float32, buf, sun, ffy, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if got := GetFloat32(ffy, buf[i*4:]); got != v {
			t.Errorf("value %d on firefly = %v, want %v", i, got, v)
		}
	}
	if _, err := r.ConvertRegion(Float32, buf, ffy, sun, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if got := GetFloat32(sun, buf[i*4:]); got != v {
			t.Errorf("value %d back on sun = %v, want %v", i, got, v)
		}
	}
}

func TestFloat32SpecialValuesReported(t *testing.T) {
	r := NewRegistry()
	buf := make([]byte, 16)
	PutFloat32(sun, buf[0:], float32(math.NaN()))
	PutFloat32(sun, buf[4:], float32(math.Inf(1)))
	PutFloat32(sun, buf[8:], 1e-44) // deep denormal, below VAX range
	PutFloat32(sun, buf[12:], 1.0)
	rep, err := r.ConvertRegion(Float32, buf, sun, ffy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NaNs != 1 || rep.Overflows != 1 || rep.Underflows != 1 {
		t.Fatalf("report %+v, want 1 NaN, 1 overflow, 1 underflow", rep)
	}
	if got := GetFloat32(ffy, buf[12:]); got != 1.0 {
		t.Fatalf("normal value corrupted: %v", got)
	}
}

func TestFloat64RegionRoundTrip(t *testing.T) {
	r := NewRegistry()
	values := []float64{math.Pi, -1e300, 2.5e-300, 0, 42}
	buf := make([]byte, 8*len(values))
	for i, v := range values {
		PutFloat64(sun, buf[i*8:], v)
	}
	if _, err := r.ConvertRegion(Float64, buf, sun, ffy, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if got := GetFloat64(ffy, buf[i*8:]); got != v {
			t.Errorf("double %d on firefly = %v, want %v", i, got, v)
		}
	}
	if _, err := r.ConvertRegion(Float64, buf, ffy, sun, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if got := GetFloat64(sun, buf[i*8:]); got != v {
			t.Errorf("double %d back on sun = %v, want %v", i, got, v)
		}
	}
}

func TestPointerRebasing(t *testing.T) {
	r := NewRegistry()
	buf := make([]byte, 8)
	PutPointer(sun, buf[0:4], 0x1000)
	PutPointer(sun, buf[4:8], 0) // null stays null
	// Firefly DSM base is 0x2000 higher than the Sun's.
	if _, err := r.ConvertRegion(Pointer, buf, sun, ffy, 0x2000); err != nil {
		t.Fatal(err)
	}
	if got := GetPointer(ffy, buf[0:4]); got != 0x3000 {
		t.Fatalf("pointer = %#x, want 0x3000", got)
	}
	if got := GetPointer(ffy, buf[4:8]); got != 0 {
		t.Fatalf("null pointer rebased to %#x", got)
	}
	// Negative offset on the way back.
	if _, err := r.ConvertRegion(Pointer, buf, ffy, sun, -0x2000); err != nil {
		t.Fatal(err)
	}
	if got := GetPointer(sun, buf[0:4]); got != 0x1000 {
		t.Fatalf("pointer after return = %#x, want 0x1000", got)
	}
}

func TestRegisterStructRecord(t *testing.T) {
	// The paper's measured compound type: records of 3 ints, 3 floats,
	// and 4 shorts (§3.1).
	r := NewRegistry()
	id, err := r.RegisterStruct("record", []Field{
		{Type: Int32, Count: 3},
		{Type: Float32, Count: 3},
		{Type: Int16, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	typ := r.MustGet(id)
	if typ.Size != 3*4+3*4+4*2 {
		t.Fatalf("record size %d, want 32", typ.Size)
	}
	if typ.Cost.Int32Ops != 3 || typ.Cost.Float32Ops != 3 || typ.Cost.Int16Ops != 4 {
		t.Fatalf("cost %+v wrong", typ.Cost)
	}

	buf := make([]byte, typ.Size)
	PutInt32(sun, buf[0:], 7)
	PutInt32(sun, buf[4:], -8)
	PutInt32(sun, buf[8:], 9)
	PutFloat32(sun, buf[12:], 1.25)
	PutFloat32(sun, buf[16:], -2.5)
	PutFloat32(sun, buf[20:], 3.75)
	PutInt16(sun, buf[24:], 10)
	PutInt16(sun, buf[26:], -11)
	PutInt16(sun, buf[28:], 12)
	PutInt16(sun, buf[30:], -13)

	if _, err := r.ConvertRegion(id, buf, sun, ffy, 0); err != nil {
		t.Fatal(err)
	}
	if GetInt32(ffy, buf[0:]) != 7 || GetInt32(ffy, buf[4:]) != -8 || GetInt32(ffy, buf[8:]) != 9 {
		t.Fatal("record ints wrong after conversion")
	}
	if GetFloat32(ffy, buf[12:]) != 1.25 || GetFloat32(ffy, buf[16:]) != -2.5 || GetFloat32(ffy, buf[20:]) != 3.75 {
		t.Fatal("record floats wrong after conversion")
	}
	if GetInt16(ffy, buf[24:]) != 10 || GetInt16(ffy, buf[26:]) != -11 || GetInt16(ffy, buf[28:]) != 12 || GetInt16(ffy, buf[30:]) != -13 {
		t.Fatal("record shorts wrong after conversion")
	}
}

func TestNestedStructs(t *testing.T) {
	r := NewRegistry()
	inner, err := r.RegisterStruct("point", []Field{
		{Type: Float32, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := r.RegisterStruct("segment", []Field{
		{Type: inner, Count: 2},
		{Type: Int32, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	typ := r.MustGet(outer)
	if typ.Size != 2*8+4 {
		t.Fatalf("segment size %d, want 20", typ.Size)
	}
	buf := make([]byte, typ.Size)
	PutFloat32(sun, buf[0:], 1)
	PutFloat32(sun, buf[4:], 2)
	PutFloat32(sun, buf[8:], 3)
	PutFloat32(sun, buf[12:], 4)
	PutInt32(sun, buf[16:], 5)
	if _, err := r.ConvertRegion(outer, buf, sun, ffy, 0); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3, 4}
	for i, w := range want {
		if got := GetFloat32(ffy, buf[i*4:]); got != w {
			t.Fatalf("nested float %d = %v, want %v", i, got, w)
		}
	}
	if GetInt32(ffy, buf[16:]) != 5 {
		t.Fatal("nested int wrong")
	}
}

func TestStructWithPointers(t *testing.T) {
	r := NewRegistry()
	id, err := r.RegisterStruct("node", []Field{
		{Type: Int32, Count: 1},
		{Type: Pointer, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	PutInt32(sun, buf[0:], 99)
	PutPointer(sun, buf[4:], 0x500)
	if _, err := r.ConvertRegion(id, buf, sun, ffy, 0x100); err != nil {
		t.Fatal(err)
	}
	if GetInt32(ffy, buf[0:]) != 99 {
		t.Fatal("node value wrong")
	}
	if GetPointer(ffy, buf[4:]) != 0x600 {
		t.Fatalf("node pointer %#x, want 0x600", GetPointer(ffy, buf[4:]))
	}
}

func TestRegisterStructErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterStruct("empty", nil); err == nil {
		t.Error("empty struct registered")
	}
	if _, err := r.RegisterStruct("bad", []Field{{Type: 9999, Count: 1}}); err == nil {
		t.Error("struct with unknown field type registered")
	}
	if _, err := r.RegisterStruct("zero", []Field{{Type: Int32, Count: 0}}); err == nil {
		t.Error("struct with zero-count field registered")
	}
}

func TestRegisterCustomErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterCustom("nosize", 0, CostUnits{}, func([]byte, arch.Arch, arch.Arch, int32, *Report) error { return nil }); err == nil {
		t.Error("zero-size custom type registered")
	}
	if _, err := r.RegisterCustom("nofn", 4, CostUnits{}, nil); err == nil {
		t.Error("custom type without routine registered")
	}
}

func TestConvertRegionErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.ConvertRegion(9999, make([]byte, 4), sun, ffy, 0); err == nil {
		t.Error("unknown type converted")
	}
	if _, err := r.ConvertRegion(Int32, make([]byte, 5), sun, ffy, 0); err == nil {
		t.Error("misaligned region converted")
	}
}

func TestPropertyInt32ConversionIsInvolution(t *testing.T) {
	r := NewRegistry()
	f := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		buf := make([]byte, 4*len(vals))
		for i, v := range vals {
			PutInt32(sun, buf[i*4:], v)
		}
		orig := bytes.Clone(buf)
		if _, err := r.ConvertRegion(Int32, buf, sun, ffy, 0); err != nil {
			return false
		}
		if _, err := r.ConvertRegion(Int32, buf, ffy, sun, 0); err != nil {
			return false
		}
		return bytes.Equal(buf, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValuesSurviveMigration(t *testing.T) {
	// Whatever int32 values an application writes on one host must read
	// back identically on the other after page conversion.
	r := NewRegistry()
	f := func(vals []int32) bool {
		buf := make([]byte, 4*len(vals))
		for i, v := range vals {
			PutInt32(ffy, buf[i*4:], v)
		}
		if _, err := r.ConvertRegion(Int32, buf, ffy, sun, 0); err != nil {
			return false
		}
		for i, v := range vals {
			if GetInt32(sun, buf[i*4:]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSkippingConversionCorruptsData(t *testing.T) {
	// Motivates the whole mechanism: moving a page between the two
	// architectures without conversion yields wrong values (except for
	// palindromic byte patterns).
	buf := make([]byte, 4)
	PutInt32(sun, buf, 0x01020304)
	if got := GetInt32(ffy, buf); got == 0x01020304 {
		t.Fatal("unconverted data read correctly; heterogeneity not modelled")
	}
}
