package conv

import (
	"reflect"
	"testing"

	"repro/internal/arch"
)

func TestRegisterGoStructBasic(t *testing.T) {
	type Sample struct {
		A int32
		B float32
		C int16
		D int16
	}
	r := NewRegistry()
	id, err := r.RegisterGoStruct(reflect.TypeOf(Sample{}))
	if err != nil {
		t.Fatal(err)
	}
	typ := r.MustGet(id)
	if typ.Name != "Sample" {
		t.Errorf("name %q", typ.Name)
	}
	if typ.Size != 4+4+2+2 {
		t.Errorf("size %d, want 12", typ.Size)
	}
	if typ.Cost.Int32Ops != 1 || typ.Cost.Float32Ops != 1 || typ.Cost.Int16Ops != 2 {
		t.Errorf("cost %+v", typ.Cost)
	}
}

func TestRegisterGoStructConversionWorks(t *testing.T) {
	type Record struct {
		ID    int32
		Score float64
		Tag   [4]int8
		Next  Ptr
	}
	r := NewRegistry()
	id, err := r.RegisterGoStruct(reflect.TypeOf(Record{}))
	if err != nil {
		t.Fatal(err)
	}
	typ := r.MustGet(id)
	buf := make([]byte, typ.Size)
	sun := arch.SunArch
	PutInt32(sun, buf[0:], 77)
	PutFloat64(sun, buf[4:], 2.5)
	copy(buf[12:16], "abcd")
	PutPointer(sun, buf[16:], 0x400)

	if _, err := r.ConvertRegion(id, buf, sun, arch.FireflyArch, 0x100); err != nil {
		t.Fatal(err)
	}
	ffy := arch.FireflyArch
	if GetInt32(ffy, buf[0:]) != 77 {
		t.Error("int corrupted")
	}
	if GetFloat64(ffy, buf[4:]) != 2.5 {
		t.Error("double corrupted")
	}
	if string(buf[12:16]) != "abcd" {
		t.Error("chars corrupted")
	}
	if GetPointer(ffy, buf[16:]) != 0x500 {
		t.Errorf("pointer %#x, want rebased 0x500", GetPointer(ffy, buf[16:]))
	}
}

func TestRegisterGoStructArrays(t *testing.T) {
	type Vec struct {
		X [3]float32
	}
	type Pair struct {
		V [2]Vec
		N int32
	}
	r := NewRegistry()
	id, err := r.RegisterGoStruct(reflect.TypeOf(Pair{}))
	if err != nil {
		t.Fatal(err)
	}
	typ := r.MustGet(id)
	if typ.Size != 2*3*4+4 {
		t.Fatalf("size %d, want 28", typ.Size)
	}
	if typ.Cost.Float32Ops != 6 || typ.Cost.Int32Ops != 1 {
		t.Fatalf("cost %+v", typ.Cost)
	}
}

func TestRegisterGoStructNested(t *testing.T) {
	type Inner struct {
		A int16
		B int16
	}
	type Outer struct {
		I Inner
		C float32
	}
	r := NewRegistry()
	id, err := r.RegisterGoStruct(reflect.TypeOf(Outer{}))
	if err != nil {
		t.Fatal(err)
	}
	if r.MustGet(id).Size != 8 {
		t.Fatalf("size %d, want 8", r.MustGet(id).Size)
	}
}

func TestRegisterGoStructRejectsUnsupported(t *testing.T) {
	r := NewRegistry()
	bad := []any{
		struct{ S string }{},
		struct{ P *int32 }{},
		struct{ M map[int]int }{},
		struct{ I int }{},     // platform-sized int violates same-size rule
		struct{ I64 int64 }{}, // no 64-bit integer basic type in Mermaid
		struct{ Sl []int32 }{},
		struct{}{},
	}
	for _, v := range bad {
		if _, err := r.RegisterGoStruct(reflect.TypeOf(v)); err == nil {
			t.Errorf("%T accepted", v)
		}
	}
	if _, err := r.RegisterGoStruct(reflect.TypeOf(42)); err == nil {
		t.Error("non-struct accepted")
	}
}
