package conv

// Typed page diffs (the release-consistency write-update path). A diff
// is the element-aligned delta between a page's twin (its contents when
// the current interval's first write arrived) and the page now: runs of
// consecutive changed elements plus their new bytes, packed. Because a
// Mermaid page holds data of one type only and a diff's payload is whole
// elements of that type, a diff converts between architectures exactly
// like a page does — one ConvertRegion call over the packed payload,
// reusing the compiled per-type op-streams — and applying a converted
// diff is bit-identical to converting the whole written page (the
// differential fuzz in diff_test.go proves it, NaNs, denormals and
// pointer rebasing included).

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
)

// DiffRun is one run of consecutive changed elements.
type DiffRun struct {
	// Elem is the index of the run's first element within the region.
	Elem uint32
	// Count is the number of consecutive changed elements.
	Count uint32
}

// Diff is the element-aligned delta between two images of a region
// holding elements of a single registered type.
type Diff struct {
	// Type is the region's element type.
	Type TypeID
	// Runs lists the changed element runs in ascending order.
	Runs []DiffRun
	// Data holds the new bytes of every changed element, packed in run
	// order (len = total changed elements × element size).
	Data []byte
}

// Elements returns the total number of changed elements.
func (d *Diff) Elements() int {
	n := 0
	for _, r := range d.Runs {
		n += int(r.Count)
	}
	return n
}

// Empty reports whether the diff changes nothing.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// BuildDiff computes the element-aligned delta from old to new, whose
// lengths must be equal and a multiple of the type's element size. Only
// whole elements are compared: a single changed byte marks its whole
// element changed, which is what keeps the payload convertible.
func (r *Registry) BuildDiff(id TypeID, old, new []byte) (Diff, error) {
	t, ok := r.Get(id)
	if !ok {
		return Diff{}, fmt.Errorf("conv: type %d not registered", id)
	}
	if len(old) != len(new) {
		return Diff{}, fmt.Errorf("conv: diff images differ in length: %d vs %d", len(old), len(new))
	}
	if len(old)%t.Size != 0 {
		return Diff{}, fmt.Errorf("conv: region size %d not a multiple of %s element size %d", len(old), t.Name, t.Size)
	}
	d := Diff{Type: id}
	sz := t.Size
	n := len(old) / sz
	for e := 0; e < n; e++ {
		off := e * sz
		if bytesEqual(old[off:off+sz], new[off:off+sz]) {
			continue
		}
		if k := len(d.Runs); k > 0 && d.Runs[k-1].Elem+d.Runs[k-1].Count == uint32(e) {
			d.Runs[k-1].Count++
		} else {
			d.Runs = append(d.Runs, DiffRun{Elem: uint32(e), Count: 1})
		}
		d.Data = append(d.Data, new[off:off+sz]...)
	}
	return d, nil
}

// bytesEqual is bytes.Equal without the import, kept inlineable on the
// element-compare hot loop.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply copies the diff's elements into dst, which must hold the whole
// region in the same representation as the diff's payload.
func (r *Registry) Apply(d *Diff, dst []byte) error {
	t, ok := r.Get(d.Type)
	if !ok {
		return fmt.Errorf("conv: type %d not registered", d.Type)
	}
	sz := t.Size
	src := 0
	for _, run := range d.Runs {
		lo := int(run.Elem) * sz
		n := int(run.Count) * sz
		if lo+n > len(dst) || src+n > len(d.Data) {
			return fmt.Errorf("conv: diff run [%d,+%d) outside region of %d bytes", run.Elem, run.Count, len(dst))
		}
		copy(dst[lo:lo+n], d.Data[src:src+n])
		src += n
	}
	if src != len(d.Data) {
		return fmt.Errorf("conv: diff payload %d bytes, runs cover %d", len(d.Data), src)
	}
	return nil
}

// ConvertDiff converts the diff's payload in place between architectures,
// exactly as ConvertRegion converts a page: the payload is packed whole
// elements of the diff's single type. Run headers are representation-free
// element indices and need no conversion.
func (r *Registry) ConvertDiff(d *Diff, from, to arch.Arch, ptrOff int32) (Report, error) {
	return r.ConvertRegion(d.Type, d.Data, from, to, ptrOff)
}

// diffHdrSize is the encoded size of the run-count header and of each
// run entry (big-endian u32s — canonical, so headers cross architectures
// untouched; only the payload is representation-dependent).
const diffHdrSize = 4

// EncodedSize returns the wire size of the diff.
func (d *Diff) EncodedSize() int {
	return diffHdrSize + 8*len(d.Runs) + len(d.Data)
}

// EncodeTo writes the wire form of the diff into buf, which must be at
// least EncodedSize bytes, and returns the bytes written. The layout is
// [u32 nruns] [u32 elem, u32 count]×nruns [payload]; header integers are
// big-endian regardless of host, the payload stays in the sender's
// representation (the receiver converts it via ConvertDiff).
func (d *Diff) EncodeTo(buf []byte) int {
	binary.BigEndian.PutUint32(buf, uint32(len(d.Runs)))
	off := diffHdrSize
	for _, run := range d.Runs {
		binary.BigEndian.PutUint32(buf[off:], run.Elem)
		binary.BigEndian.PutUint32(buf[off+4:], run.Count)
		off += 8
	}
	copy(buf[off:], d.Data)
	return off + len(d.Data)
}

// DecodeDiff parses a wire-form diff for a region of elements of type
// id. The returned diff's Runs and Data alias fresh copies, not buf.
func DecodeDiff(id TypeID, elemSize int, buf []byte) (Diff, error) {
	if len(buf) < diffHdrSize {
		return Diff{}, fmt.Errorf("conv: diff of %d bytes has no header", len(buf))
	}
	nruns := int(binary.BigEndian.Uint32(buf))
	need := diffHdrSize + 8*nruns
	if len(buf) < need {
		return Diff{}, fmt.Errorf("conv: diff header claims %d runs, only %d bytes follow", nruns, len(buf)-diffHdrSize)
	}
	d := Diff{Type: id, Runs: make([]DiffRun, nruns)}
	off := diffHdrSize
	elems := 0
	for i := range d.Runs {
		d.Runs[i].Elem = binary.BigEndian.Uint32(buf[off:])
		d.Runs[i].Count = binary.BigEndian.Uint32(buf[off+4:])
		elems += int(d.Runs[i].Count)
		off += 8
	}
	if len(buf)-off != elems*elemSize {
		return Diff{}, fmt.Errorf("conv: diff payload %d bytes, runs claim %d elements of %d bytes",
			len(buf)-off, elems, elemSize)
	}
	d.Data = append([]byte(nil), buf[off:]...)
	return d, nil
}
