package conv

// Word-at-a-time bulk kernels for the integer and pointer conversion
// ops. Each rewrites a packed region in place; the compiled-plan
// executor in plan.go picks them per op, so a whole page of one basic
// type is converted by a single unrolled loop instead of one indirect
// call per element.

import (
	"encoding/binary"
	"math/bits"
)

// bswap16Region byte-swaps every 16-bit element of buf, four at a time.
func bswap16Region(buf []byte) {
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := binary.LittleEndian.Uint64(buf[i:])
		v = v>>8&0x00ff00ff00ff00ff | v&0x00ff00ff00ff00ff<<8
		binary.LittleEndian.PutUint64(buf[i:], v)
	}
	for ; i+2 <= len(buf); i += 2 {
		buf[i], buf[i+1] = buf[i+1], buf[i]
	}
}

// bswap32Region byte-swaps every 32-bit element of buf, two at a time.
func bswap32Region(buf []byte) {
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := binary.LittleEndian.Uint64(buf[i:])
		v = v>>24&0x000000ff000000ff |
			v>>8&0x0000ff000000ff00 |
			v&0x0000ff000000ff00<<8 |
			v&0x000000ff000000ff<<24
		binary.LittleEndian.PutUint64(buf[i:], v)
	}
	if i+4 <= len(buf) {
		binary.LittleEndian.PutUint32(buf[i:],
			bits.ReverseBytes32(binary.LittleEndian.Uint32(buf[i:])))
	}
}

// bswap64Region byte-swaps every 64-bit element of buf.
func bswap64Region(buf []byte) {
	for i := 0; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:],
			bits.ReverseBytes64(binary.LittleEndian.Uint64(buf[i:])))
	}
}

// ptrRegion rebases every 32-bit DSM pointer in buf by ptrOff,
// translating between the source and destination byte orders. The null
// pointer is universal and is not rebased, exactly as in the
// per-element routine.
func ptrRegion(buf []byte, srcBig, dstBig bool, ptrOff int32) {
	for i := 0; i+4 <= len(buf); i += 4 {
		v := binary.LittleEndian.Uint32(buf[i:])
		if srcBig {
			v = bits.ReverseBytes32(v)
		}
		if v != 0 {
			v = uint32(int32(v) + ptrOff)
		}
		if dstBig {
			v = bits.ReverseBytes32(v)
		}
		binary.LittleEndian.PutUint32(buf[i:], v)
	}
}
