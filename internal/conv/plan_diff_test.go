package conv

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// archPairs are the conversion directions the differential tests cover:
// the paper's two machines in both directions, plus synthetic pairs that
// exercise the same-float-format/different-byte-order legs of the float
// converters (not reachable with Sun and Firefly alone).
func archPairs() [][2]arch.Arch {
	ieeeLittle := arch.Arch{Kind: arch.Sun, Order: arch.LittleEndian, Floats: arch.IEEE754, PageSize: 8192, MaxCPUs: 1}
	vaxBig := arch.Arch{Kind: arch.Firefly, Order: arch.BigEndian, Floats: arch.VAXFloat, PageSize: 1024, MaxCPUs: 1}
	return [][2]arch.Arch{
		{arch.SunArch, arch.FireflyArch},
		{arch.FireflyArch, arch.SunArch},
		{arch.SunArch, ieeeLittle}, // IEEE↔IEEE, order swap
		{ieeeLittle, arch.SunArch},
		{arch.FireflyArch, vaxBig},     // VAX↔VAX, order swap
		{ieeeLittle, arch.FireflyArch}, // IEEE little → VAX little (no swap, format change)
		{arch.FireflyArch, ieeeLittle},
	}
}

// specialFloat32Bits are IEEE single patterns that force the slow path.
var specialFloat32Bits = []uint32{
	0x00000000, // +0
	0x80000000, // -0
	0x7f800000, // +Inf
	0xff800000, // -Inf
	0x7fc00001, // quiet NaN
	0x7f800001, // signalling NaN
	0x00000001, // smallest denormal
	0x007fffff, // largest denormal
	0x00800000, // smallest normal (underflows to VAX F? exp=1 → fast path)
	0x7f7fffff, // largest normal (overflows VAX F)
	0x7f000000, // exp 254: overflow boundary
	0x01000000, // exp 2
	0x3f800001, // 1.0 + ulp
	math.Float32bits(1.0),
	math.Float32bits(-123.456),
}

// specialFloat64Bits are IEEE double patterns that force the slow path.
var specialFloat64Bits = []uint64{
	0x0000000000000000, // +0
	0x8000000000000000, // -0
	0x7ff0000000000000, // +Inf
	0xfff0000000000000, // -Inf
	0x7ff8000000000001, // quiet NaN
	0x7ff0000000000001, // signalling NaN
	0x0000000000000001, // smallest denormal
	0x000fffffffffffff, // largest denormal
	0x0010000000000000, // smallest normal
	0x7fefffffffffffff, // largest normal (overflows VAX G)
	0x7fe0000000000000, // exp 2046: overflow boundary
	0x0020000000000000, // exp 2
	math.Float64bits(1.0),
	math.Float64bits(-98765.4321),
}

// vaxSpecialWords are VAX 32-bit patterns (in the canonical word layout)
// covering zero, the reserved operand, and the low exponents that land
// in IEEE's denormal range.
var vaxSpecialWords = []uint32{
	0x00000000,          // true zero
	0x00008000,          // reserved operand (sign=1, exp=0)
	0x12348000 | 0x0080, // exp=1: IEEE denormal range
	0x43210100,          // exp=2
	0x00000180,          // exp=3: fast-path boundary
	0xffffff7f,          // large magnitude
}

func fillRandom(t *testing.T, rng *rand.Rand, buf []byte) {
	t.Helper()
	if _, err := rng.Read(buf); err != nil {
		t.Fatal(err)
	}
}

// sprinkle writes special element patterns over parts of buf.
func sprinkle32(rng *rand.Rand, buf []byte, patterns []uint32) {
	for i := 0; i+4 <= len(buf); i += 4 {
		if rng.Intn(3) == 0 {
			binary.LittleEndian.PutUint32(buf[i:], patterns[rng.Intn(len(patterns))])
		}
	}
}

func sprinkle64(rng *rand.Rand, buf []byte, patterns []uint64) {
	for i := 0; i+8 <= len(buf); i += 8 {
		if rng.Intn(3) == 0 {
			binary.LittleEndian.PutUint64(buf[i:], patterns[rng.Intn(len(patterns))])
		}
	}
}

// diffCheck runs both paths over identical copies of buf and fails on
// any divergence in output bytes, Report, or error.
func diffCheck(t *testing.T, r *Registry, id TypeID, buf []byte, from, to arch.Arch, ptrOff int32) {
	t.Helper()
	fast := append([]byte(nil), buf...)
	ref := append([]byte(nil), buf...)
	fastRep, fastErr := r.ConvertRegion(id, fast, from, to, ptrOff)
	refRep, refErr := r.ConvertRegionReference(id, ref, from, to, ptrOff)
	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("type %d %v→%v: error mismatch: fast=%v ref=%v", id, from.Kind, to.Kind, fastErr, refErr)
	}
	if fastErr != nil {
		return
	}
	if fastRep != refRep {
		t.Errorf("type %d %v→%v: report mismatch: fast=%+v ref=%+v", id, from.Kind, to.Kind, fastRep, refRep)
	}
	if !bytes.Equal(fast, ref) {
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("type %d %v→%v: byte %d differs: fast=%02x ref=%02x (in=%02x)",
					id, from.Kind, to.Kind, i, fast[i], ref[i], buf[i])
			}
		}
	}
}

// TestPlanMatchesReferenceBasic drives every basic type through every
// architecture pair with random and special-value-laden buffers.
func TestPlanMatchesReferenceBasic(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(1))
	for _, pair := range archPairs() {
		from, to := pair[0], pair[1]
		for _, id := range []TypeID{Char, Int16, Int32, Float32, Float64, Pointer} {
			typ := r.MustGet(id)
			for trial := 0; trial < 8; trial++ {
				n := (1 + rng.Intn(300)) * typ.Size
				buf := make([]byte, n)
				fillRandom(t, rng, buf)
				switch id {
				case Float32:
					sprinkle32(rng, buf, specialFloat32Bits)
					sprinkle32(rng, buf, vaxSpecialWords)
				case Float64:
					sprinkle64(rng, buf, specialFloat64Bits)
				case Pointer:
					if trial%2 == 0 {
						// Make some pointers null to hit the no-rebase rule.
						for i := 0; i+4 <= len(buf); i += 4 {
							if rng.Intn(4) == 0 {
								copy(buf[i:i+4], []byte{0, 0, 0, 0})
							}
						}
					}
				}
				ptrOff := int32(rng.Intn(1<<20) - 1<<19)
				diffCheck(t, r, id, buf, from, to, ptrOff)
			}
		}
	}
}

// TestPlanMatchesReferenceCompound covers nested compound types:
// struct-of-basics with arrays, struct-of-struct, and a compound that
// coalesces to a single op.
func TestPlanMatchesReferenceCompound(t *testing.T) {
	r := NewRegistry()
	inner, err := r.RegisterStruct("inner", []Field{
		{Type: Int16, Count: 2},
		{Type: Float32, Count: 1},
		{Type: Pointer, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := r.RegisterStruct("outer", []Field{
		{Type: Char, Count: 3},
		{Type: inner, Count: 2},
		{Type: Float64, Count: 4},
		{Type: Int32, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	coalesced, err := r.RegisterStruct("vec", []Field{
		{Type: Int32, Count: 7},
		{Type: Int32, Count: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MustGet(coalesced).PlanOps(); got != "swap32×16" {
		t.Errorf("coalesced plan = %q, want swap32×16", got)
	}
	rng := rand.New(rand.NewSource(2))
	for _, pair := range archPairs() {
		from, to := pair[0], pair[1]
		for _, id := range []TypeID{inner, outer, coalesced} {
			typ := r.MustGet(id)
			for trial := 0; trial < 6; trial++ {
				n := (1 + rng.Intn(40)) * typ.Size
				buf := make([]byte, n)
				fillRandom(t, rng, buf)
				sprinkle32(rng, buf, specialFloat32Bits)
				sprinkle64(rng, buf, specialFloat64Bits)
				diffCheck(t, r, id, buf, from, to, int32(rng.Intn(1<<16)))
			}
		}
	}
}

// TestCustomTypeHasNoPlan pins the contract that custom conversion
// routines bypass the plan machinery entirely, as does any compound
// containing one.
func TestCustomTypeHasNoPlan(t *testing.T) {
	r := NewRegistry()
	custom, err := r.RegisterCustom("opaque", 4, CostUnits{Bytes: 4},
		func(elem []byte, from, to arch.Arch, _ int32, _ *Report) error {
			elem[0] ^= 0xff
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if r.MustGet(custom).PlanOps() != "" {
		t.Error("custom type unexpectedly has a plan")
	}
	wrapper, err := r.RegisterStruct("wrap", []Field{{Type: Int32, Count: 1}, {Type: custom, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.MustGet(wrapper).PlanOps() != "" {
		t.Error("compound containing a custom type unexpectedly has a plan")
	}
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	rep, err := r.ConvertRegion(wrapper, buf, arch.SunArch, arch.FireflyArch, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{4, 3, 2, 1, ^byte(5), 6, 7, 8}
	if !bytes.Equal(buf, want) {
		t.Errorf("custom path output = %v, want %v", buf, want)
	}
	if rep.Elements != 1 {
		t.Errorf("Elements = %d, want 1", rep.Elements)
	}
}

// TestDenseRegistryLookup pins the dense-slice lookup: sequentially
// registered types resolve without touching the overflow map, and
// unknown identifiers (both within and beyond the dense range) miss.
func TestDenseRegistryLookup(t *testing.T) {
	r := NewRegistry()
	id, err := r.RegisterStruct("s", []Field{{Type: Int32, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if id != FirstUserType {
		t.Fatalf("first user type = %d, want %d", id, FirstUserType)
	}
	if r.overflow != nil {
		t.Error("sequential registration spilled into the overflow map")
	}
	if _, ok := r.Get(99); ok {
		t.Error("unregistered id 99 resolved")
	}
	if _, ok := r.Get(denseCap + 5); ok {
		t.Error("id beyond dense range resolved")
	}
	if got := r.MustGet(id).PlanOps(); got != "swap32×2" {
		t.Errorf("plan = %q, want swap32×2", got)
	}
}

// FuzzConvertDiff fuzzes the differential property directly: arbitrary
// bytes through every basic type and a nested compound, plan vs
// reference, all architecture pairs.
func FuzzConvertDiff(f *testing.F) {
	f.Add([]byte{0x7f, 0x80, 0x00, 0x00, 0x00, 0x00, 0x80, 0x00}, uint8(0), int32(64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01, 0x00, 0x00, 0x80}, uint8(4), int32(-4096))
	f.Add(bytes.Repeat([]byte{0xa5}, 64), uint8(5), int32(0))
	r := NewRegistry()
	compound, err := r.RegisterStruct("fz", []Field{
		{Type: Int16, Count: 1},
		{Type: Float32, Count: 2},
		{Type: Float64, Count: 1},
		{Type: Pointer, Count: 1},
		{Type: Char, Count: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	ids := []TypeID{Char, Int16, Int32, Float32, Float64, Pointer, compound}
	pairs := archPairs()
	f.Fuzz(func(t *testing.T, data []byte, sel uint8, ptrOff int32) {
		id := ids[int(sel)%len(ids)]
		typ := r.MustGet(id)
		n := len(data) / typ.Size * typ.Size
		for _, pair := range pairs {
			diffCheck(t, r, id, data[:n], pair[0], pair[1], ptrOff)
		}
	})
}
