package conv

import (
	"testing"

	"repro/internal/arch"
)

// TestConvertRegionZeroAllocs guards the compiled-plan conversion path:
// converting a whole page of any basic or compound type must not
// allocate. The reference path is exempt (it reports per-element errors
// through fmt) but the plan path is what every transfer runs.
func TestConvertRegionZeroAllocs(t *testing.T) {
	r := NewRegistry()
	compound, err := r.RegisterStruct("rec", []Field{
		{Type: Int32, Count: 2},
		{Type: Float64, Count: 1},
		{Type: Pointer, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id   TypeID
		name string
	}{
		{Int32, "int32"}, {Float64, "float64"}, {compound, "compound"},
	} {
		size := r.MustGet(tc.id).Size
		buf := make([]byte, 1024/size*size)
		for i := range buf {
			buf[i] = byte(i)
		}
		avg := testing.AllocsPerRun(100, func() {
			if _, err := r.ConvertRegion(tc.id, buf, arch.SunArch, arch.FireflyArch, 64); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: ConvertRegion allocates %.1f times per run, want 0", tc.name, avg)
		}
	}
}

// TestRegistryGetZeroAllocs guards the dense-slice type lookup.
func TestRegistryGetZeroAllocs(t *testing.T) {
	r := NewRegistry()
	avg := testing.AllocsPerRun(100, func() {
		if _, ok := r.Get(Float64); !ok {
			t.Fatal("Float64 missing")
		}
		r.MustGet(Int32)
	})
	if avg != 0 {
		t.Errorf("Registry lookup allocates %.1f times per run, want 0", avg)
	}
}
