package conv

// Compiled conversion plans. The paper composes a compound type's
// conversion routine from one call per field per element; profiled
// against Table 3 that indirect-call-per-element structure is exactly
// what makes conversion dominate a heterogeneous page transfer. A plan
// flattens a registered type — including recursive compounds — into a
// linear op-stream (swap16×N, swap32×N, f32×N, f64×N, ptr×N, copy N
// bytes) at Register time, so converting a region is a handful of bulk
// kernel runs instead of len(buf)/Size indirect calls.
//
// The plan path is bit-identical to the retained per-element reference
// path (same output bytes, same Report counts); the differential tests
// in plan_diff_test.go assert this over arbitrary inputs. Types with
// application-supplied conversion routines (RegisterCustom) have no
// plan and always take the reference path.

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/vaxfloat"
)

// opCode identifies one bulk conversion operation.
type opCode uint8

const (
	// opCopy leaves n bytes as they are (characters, padding).
	opCopy opCode = iota
	// opSwap16 byte-swaps n 16-bit integers when the orders differ.
	opSwap16
	// opSwap32 byte-swaps n 32-bit integers when the orders differ.
	opSwap32
	// opF32 converts n single-precision floats between formats.
	opF32
	// opF64 converts n double-precision floats between formats.
	opF64
	// opPtr rebases n 32-bit DSM pointers.
	opPtr
)

// opSize is the element width in bytes of each op (opCopy counts raw
// bytes, so its width is 1).
var opSize = [...]int{opCopy: 1, opSwap16: 2, opSwap32: 4, opF32: 4, opF64: 8, opPtr: 4}

// planOp is one op of a compiled plan: n consecutive elements (bytes
// for opCopy) of the op's width.
type planOp struct {
	code opCode
	n    int
}

// appendOp appends one op to a plan, coalescing with the previous op
// when the codes match (adjacent same-type fields, array flattening).
func appendOp(plan []planOp, code opCode, n int) []planOp {
	if n == 0 {
		return plan
	}
	if len(plan) > 0 && plan[len(plan)-1].code == code {
		plan[len(plan)-1].n += n
		return plan
	}
	return append(plan, planOp{code: code, n: n})
}

// appendPlan appends count repetitions of sub to plan. A single-op
// subplan scales instead of repeating, so an embedded array of a basic
// type compiles to one op regardless of its length.
func appendPlan(plan, sub []planOp, count int) []planOp {
	if len(sub) == 1 {
		return appendOp(plan, sub[0].code, sub[0].n*count)
	}
	for i := 0; i < count; i++ {
		for _, op := range sub {
			plan = appendOp(plan, op.code, op.n)
		}
	}
	return plan
}

// compilePlan builds the op-stream for a compound type from its
// resolved fields, or nil if any field's type has no plan (custom
// conversion routines are opaque).
func compilePlan(fields []Field, resolved []*Type) []planOp {
	var plan []planOp
	for i, f := range fields {
		if resolved[i].plan == nil {
			return nil
		}
		plan = appendPlan(plan, resolved[i].plan, f.Count)
	}
	return plan
}

// execPlan converts every element of buf with the compiled plan. A
// single-op plan (a page of one basic type, or a compound that
// coalesced to one op) runs one bulk kernel over the whole region;
// otherwise the op-stream runs per element, each op still a bulk
// kernel over its field span.
func execPlan(plan []planOp, buf []byte, elemSize int, from, to arch.Arch, ptrOff int32, rep *Report) {
	if len(plan) == 1 {
		execOp(plan[0].code, buf, from, to, ptrOff, rep)
		return
	}
	for off := 0; off < len(buf); off += elemSize {
		o := off
		for _, op := range plan {
			w := op.n * opSize[op.code]
			execOp(op.code, buf[o:o+w], from, to, ptrOff, rep)
			o += w
		}
	}
}

// execOp runs one bulk kernel over a packed span of the op's elements,
// mirroring the per-element routines byte for byte.
func execOp(code opCode, seg []byte, from, to arch.Arch, ptrOff int32, rep *Report) {
	swap := from.Order != to.Order
	switch code {
	case opCopy:
		// Bytes are order-independent; nothing to do.
	case opSwap16:
		if swap {
			bswap16Region(seg)
		}
	case opSwap32:
		if swap {
			bswap32Region(seg)
		}
	case opPtr:
		ptrRegion(seg, from.Order == arch.BigEndian, to.Order == arch.BigEndian, ptrOff)
	case opF32:
		switch {
		case from.Floats == to.Floats:
			if swap {
				bswap32Region(seg)
			}
		case from.Floats == arch.IEEE754:
			ov, uf, nan := vaxfloat.IEEEToFRegion(seg, from.Order == arch.BigEndian)
			rep.Overflows += ov
			rep.Underflows += uf
			rep.NaNs += nan
		default:
			vaxfloat.FToIEEERegion(seg, to.Order == arch.BigEndian)
		}
	case opF64:
		switch {
		case from.Floats == to.Floats:
			if swap {
				bswap64Region(seg)
			}
		case from.Floats == arch.IEEE754:
			ov, uf, nan := vaxfloat.IEEEToGRegion(seg, from.Order == arch.BigEndian)
			rep.Overflows += ov
			rep.Underflows += uf
			rep.NaNs += nan
		default:
			vaxfloat.GToIEEERegion(seg, to.Order == arch.BigEndian)
		}
	default:
		panic(fmt.Sprintf("conv: unknown plan op %d", code))
	}
}

// PlanOps returns a human-readable rendering of the type's compiled
// plan, or "" if the type has none (custom conversion routine). It is
// exported for tests and diagnostics.
func (t *Type) PlanOps() string {
	if t.plan == nil {
		return ""
	}
	names := [...]string{opCopy: "copy", opSwap16: "swap16", opSwap32: "swap32",
		opF32: "f32", opF64: "f64", opPtr: "ptr"}
	s := ""
	for i, op := range t.plan {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s×%d", names[op.code], op.n)
	}
	return s
}
