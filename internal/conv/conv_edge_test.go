package conv

// Round-trip edge-case tests: IEEE values with no VAX representation
// (NaN, infinities, denormals), pointer rebasing when the DSM spaces
// share a base (offset 0), and compound types mixing every primitive —
// table-driven, exercising both conversion directions.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/arch"
)

func TestFloat32EdgeCasesSunToFireflyAndBack(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name string
		in   float32
		// want is the value expected after Sun→Firefly→Sun; NaN means
		// "any NaN" (the VAX reserved operand bridges back as a NaN).
		want       float32
		overflows  int
		underflows int
		nans       int
	}{
		{"NaN", float32(math.NaN()), float32(math.NaN()), 0, 0, 1},
		{"+Inf clamps to MaxF", float32(math.Inf(1)), float32(vaxMaxF32()), 1, 0, 0},
		{"-Inf clamps to -MaxF", float32(math.Inf(-1)), float32(-vaxMaxF32()), 1, 0, 0},
		{"smallest IEEE denormal flushes", math.SmallestNonzeroFloat32, 0, 0, 1, 0},
		{"denormal below MinF flushes", float32(math.Ldexp(0.5, -128)), 0, 0, 1, 0},
		// VAX F reaches down to 2^-128, two octaves below IEEE's smallest
		// normal, so large IEEE denormals and the min normal survive.
		{"largest IEEE denormal survives", math.Float32frombits(0x007fffff),
			math.Float32frombits(0x007fffff), 0, 0, 0},
		{"IEEE min normal survives", math.Float32frombits(0x00800000),
			math.Float32frombits(0x00800000), 0, 0, 0},
		{"zero", 0, 0, 0, 0, 0},
		{"negative zero normalizes", float32(math.Copysign(0, -1)), 0, 0, 0, 0},
		{"exact value survives", -1234.5625, -1234.5625, 0, 0, 0},
		{"near MaxFloat32 clamps", math.MaxFloat32, float32(vaxMaxF32()), 1, 0, 0},
	}
	for _, tc := range cases {
		buf := make([]byte, 4)
		PutFloat32(sun, buf, tc.in)
		rep, err := r.ConvertRegion(Float32, buf, sun, ffy, 0)
		if err != nil {
			t.Errorf("%s: to Firefly: %v", tc.name, err)
			continue
		}
		if rep.Overflows != tc.overflows || rep.Underflows != tc.underflows || rep.NaNs != tc.nans {
			t.Errorf("%s: report = %+v, want over=%d under=%d nan=%d",
				tc.name, rep, tc.overflows, tc.underflows, tc.nans)
		}
		// Back: VAX→IEEE never loses range, so the return trip is clean.
		rep, err = r.ConvertRegion(Float32, buf, ffy, sun, 0)
		if err != nil {
			t.Errorf("%s: back to Sun: %v", tc.name, err)
			continue
		}
		if rep.Overflows+rep.Underflows+rep.NaNs != 0 {
			t.Errorf("%s: VAX→IEEE reported anomalies: %+v", tc.name, rep)
		}
		got := GetFloat32(sun, buf)
		if math.IsNaN(float64(tc.want)) {
			if !math.IsNaN(float64(got)) {
				t.Errorf("%s: round trip = %v, want NaN", tc.name, got)
			}
		} else if got != tc.want {
			t.Errorf("%s: round trip = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFloat64EdgeCasesFireflyToSunAndBack(t *testing.T) {
	r := NewRegistry()
	// Values written on the Firefly (VAX G) are always in IEEE double
	// range, so the Firefly→Sun direction reports nothing; the stress is
	// on the return (Sun→Firefly) leg.
	cases := []struct {
		name string
		in   float64
		want float64 // after Firefly→Sun→Firefly
	}{
		{"exact double", 6.02214076e23, 6.02214076e23},
		{"negative exact", -0.0078125, -0.0078125},
		{"smallest VAX G magnitude", math.Ldexp(0.5, -1023), math.Ldexp(0.5, -1023)},
		{"zero", 0, 0},
	}
	for _, tc := range cases {
		buf := make([]byte, 8)
		PutFloat64(ffy, buf, tc.in)
		rep, err := r.ConvertRegion(Float64, buf, ffy, sun, 0)
		if err != nil {
			t.Errorf("%s: to Sun: %v", tc.name, err)
			continue
		}
		if rep.Overflows+rep.Underflows+rep.NaNs != 0 {
			t.Errorf("%s: VAX→IEEE reported anomalies: %+v", tc.name, rep)
		}
		if _, err = r.ConvertRegion(Float64, buf, sun, ffy, 0); err != nil {
			t.Errorf("%s: back to Firefly: %v", tc.name, err)
			continue
		}
		if got := GetFloat64(ffy, buf); got != tc.want {
			t.Errorf("%s: round trip = %v, want %v", tc.name, got, tc.want)
		}
	}

	// IEEE doubles beyond the G_floating exponent range clamp on the way
	// in and stay clamped — the documented, reported policy.
	buf := make([]byte, 8)
	PutFloat64(sun, buf, math.MaxFloat64)
	rep, err := r.ConvertRegion(Float64, buf, sun, ffy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overflows != 1 {
		t.Fatalf("MaxFloat64: report %+v, want one overflow", rep)
	}
	if _, err = r.ConvertRegion(Float64, buf, ffy, sun, 0); err != nil {
		t.Fatal(err)
	}
	if got := GetFloat64(sun, buf); got > math.MaxFloat64 || got < math.MaxFloat64/2 {
		t.Fatalf("clamped MaxFloat64 round trip = %g", got)
	}
}

func TestPointerRebasingEdgeCases(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name   string
		in     uint32
		ptrOff int32
		want   uint32
	}{
		{"offset zero is identity", 0x00012345, 0, 0x00012345},
		{"null at offset zero", 0, 0, 0},
		{"null never rebased", 0, 0x4000, 0},
		{"null never rebased negative", 0, -0x4000, 0},
		{"positive rebase", 0x1000, 0x4000, 0x5000},
		{"negative rebase", 0x5000, -0x4000, 0x1000},
		{"rebase to offset zero of space", 0x4000, -0x4000, 0},
	}
	for _, tc := range cases {
		for _, dir := range []struct {
			name     string
			from, to arch.Arch
		}{{"sun->ffy", sun, ffy}, {"ffy->sun", ffy, sun}} {
			buf := make([]byte, 4)
			dir.from.Order.Binary().PutUint32(buf, tc.in)
			if _, err := r.ConvertRegion(Pointer, buf, dir.from, dir.to, tc.ptrOff); err != nil {
				t.Errorf("%s %s: %v", tc.name, dir.name, err)
				continue
			}
			if got := dir.to.Order.Binary().Uint32(buf); got != tc.want {
				t.Errorf("%s %s: %#x, want %#x", tc.name, dir.name, got, tc.want)
			}
		}
	}

	// A pointer rebased to address 0 now looks null; the reverse trip
	// must NOT rebase it back — null is universal. This asymmetry is the
	// price of the paper's null-pointer convention and is pinned here.
	buf := make([]byte, 4)
	sun.Order.Binary().PutUint32(buf, 0x4000)
	if _, err := r.ConvertRegion(Pointer, buf, sun, ffy, -0x4000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ConvertRegion(Pointer, buf, ffy, sun, 0x4000); err != nil {
		t.Fatal(err)
	}
	if got := sun.Order.Binary().Uint32(buf); got != 0 {
		t.Fatalf("pointer that landed on 0 came back as %#x, want 0 (null is sticky)", got)
	}
}

func TestMixedCompoundRoundTripBothDirections(t *testing.T) {
	r := NewRegistry()
	id, err := r.RegisterStruct("kitchen_sink", []Field{
		{Type: Int16, Count: 1},
		{Type: Char, Count: 2},
		{Type: Float32, Count: 2},
		{Type: Pointer, Count: 1},
		{Type: Float64, Count: 1},
		{Type: Int32, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	typ := r.MustGet(id)

	build := func(a arch.Arch, ptr uint32) []byte {
		b := make([]byte, typ.Size)
		PutInt16(a, b[0:2], -321)
		b[2], b[3] = 'o', 'k'
		PutFloat32(a, b[4:8], 2.5)
		PutFloat32(a, b[8:12], -0.125)
		a.Order.Binary().PutUint32(b[12:16], ptr)
		PutFloat64(a, b[16:24], 1.0/1024)
		PutInt32(a, b[24:28], 0x7eadbeef)
		return b
	}

	for _, dir := range []struct {
		name     string
		from, to arch.Arch
	}{{"sun->ffy->sun", sun, ffy}, {"ffy->sun->ffy", ffy, sun}} {
		const off = 0x2000
		orig := build(dir.from, 0x1500)
		buf := bytes.Clone(orig)
		rep, err := r.ConvertRegion(id, buf, dir.from, dir.to, off)
		if err != nil {
			t.Fatalf("%s: out: %v", dir.name, err)
		}
		if rep.Elements != 1 || rep.Overflows+rep.Underflows+rep.NaNs != 0 {
			t.Fatalf("%s: out report %+v", dir.name, rep)
		}
		// Spot-check the converted image in the destination representation.
		if got := GetFloat32(dir.to, buf[4:8]); got != 2.5 {
			t.Errorf("%s: float field = %v in destination image", dir.name, got)
		}
		if got := dir.to.Order.Binary().Uint32(buf[12:16]); got != 0x1500+off {
			t.Errorf("%s: pointer field = %#x, want %#x", dir.name, got, 0x1500+off)
		}
		if _, err := r.ConvertRegion(id, buf, dir.to, dir.from, -off); err != nil {
			t.Fatalf("%s: back: %v", dir.name, err)
		}
		if !bytes.Equal(buf, orig) {
			t.Errorf("%s: round trip changed bytes:\n got %x\nwant %x", dir.name, buf, orig)
		}
	}

	// The same compound with a NaN float field: the NaN is reported on
	// the IEEE→VAX leg, comes back as a NaN, and every other field is
	// untouched by its neighbor's anomaly.
	b := build(sun, 0)
	PutFloat32(sun, b[8:12], float32(math.NaN()))
	rep, err := r.ConvertRegion(id, b, sun, ffy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NaNs != 1 {
		t.Fatalf("NaN field: report %+v, want one NaN", rep)
	}
	if _, err := r.ConvertRegion(id, b, ffy, sun, 0); err != nil {
		t.Fatal(err)
	}
	if got := GetFloat32(sun, b[8:12]); !math.IsNaN(float64(got)) {
		t.Errorf("NaN field round trip = %v, want NaN", got)
	}
	if GetInt16(sun, b[0:2]) != -321 || GetFloat32(sun, b[4:8]) != 2.5 ||
		GetFloat64(sun, b[16:24]) != 1.0/1024 || GetInt32(sun, b[24:28]) != 0x7eadbeef {
		t.Error("NaN in one field disturbed sibling fields")
	}
}

// vaxMaxF32 is the largest finite F_floating value as seen through an
// IEEE single — what clamped values decode to after the return trip.
func vaxMaxF32() float64 {
	return float64(float32(math.Ldexp(float64(1<<24-1)/(1<<24), 127)))
}
