// Package conv implements Mermaid's data conversion mechanism (§2.3 of
// the paper): when a DSM page migrates between hosts of incompatible
// architectures, its contents must be converted based on the type of the
// data stored in the page.
//
// Mermaid requires that a page contain data of one type only (the typed
// allocator enforces this), that every type have the same size on every
// host, and that a conversion routine exist for every type stored in
// DSM. Conversion routines for user-defined compound types are composed
// from the routines for the basic types, exactly as the paper describes:
// "In the case of compound data structures, the conversion routine calls
// the appropriate conversion routine for each field. In the case of
// arrays, the conversion routine of the array type is called repeatedly."
//
// Pointer conversion is supported through an offset argument: if the DSM
// region starts at different virtual addresses on the two host types,
// pointers are rebased by (start2 - start1) during conversion.
package conv

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/vaxfloat"
)

// TypeID identifies a registered DSM data type. The identifier space is
// global and static across the cluster, mirroring the paper's global
// conversion-routine table.
type TypeID uint16

// Basic type identifiers. User-defined types start at FirstUserType.
const (
	// Invalid is the zero TypeID; it is never registered.
	Invalid TypeID = 0
	// Char is an 8-bit character; conversion is the identity.
	Char TypeID = 1
	// Int16 is a 16-bit integer ("short" in the paper's Table 3).
	Int16 TypeID = 2
	// Int32 is a 32-bit integer ("int").
	Int32 TypeID = 3
	// Float32 is a single-precision float (IEEE single / VAX F).
	Float32 TypeID = 4
	// Float64 is a double-precision float (IEEE double / VAX G).
	Float64 TypeID = 5
	// Pointer is a 32-bit DSM address, rebased during conversion.
	Pointer TypeID = 6
	// FirstUserType is the first identifier handed out by Register.
	FirstUserType TypeID = 100
)

// Report accumulates the floating-point anomalies encountered while
// converting; the paper notes precision may be lost and special IEEE
// values (NaN, infinity, denormals) need extra handling on the VAX.
type Report struct {
	// Overflows counts values clamped to the largest VAX magnitude.
	Overflows int
	// Underflows counts values flushed to zero.
	Underflows int
	// NaNs counts IEEE NaNs encoded as VAX reserved operands.
	NaNs int
	// Elements counts elements converted.
	Elements int
}

// Add merges other into r.
func (r *Report) Add(other Report) {
	r.Overflows += other.Overflows
	r.Underflows += other.Underflows
	r.NaNs += other.NaNs
	r.Elements += other.Elements
}

func (r *Report) note(o vaxfloat.Outcome) {
	switch o {
	case vaxfloat.OK:
		// Exact (or merely rounded) conversion: nothing to report.
	case vaxfloat.Overflowed:
		r.Overflows++
	case vaxfloat.Underflowed:
		r.Underflows++
	case vaxfloat.WasNaN:
		r.NaNs++
	}
}

// CostUnits counts the basic conversion operations performed per element
// of a type; the calibrated cost model turns these into virtual time.
type CostUnits struct {
	// Int16Ops, Int32Ops: byte swaps of the given width.
	Int16Ops int
	Int32Ops int
	// Float32Ops, Float64Ops: float format conversions (including the
	// extra checks for IEEE special values).
	Float32Ops int
	Float64Ops int
	// PointerOps: pointer rebasing operations.
	PointerOps int
	// Bytes: bytes merely copied or skipped (characters, padding).
	Bytes int
}

func (c CostUnits) add(other CostUnits, times int) CostUnits {
	c.Int16Ops += other.Int16Ops * times
	c.Int32Ops += other.Int32Ops * times
	c.Float32Ops += other.Float32Ops * times
	c.Float64Ops += other.Float64Ops * times
	c.PointerOps += other.PointerOps * times
	c.Bytes += other.Bytes * times
	return c
}

// ConvertFunc rewrites a single element in place from the source
// architecture's representation to the destination's. ptrOff is the
// amount to add to embedded DSM pointers (start_dst - start_src).
type ConvertFunc func(elem []byte, from, to arch.Arch, ptrOff int32, rep *Report) error

// Type describes a registered DSM data type.
type Type struct {
	// ID is the type's identifier.
	ID TypeID
	// Name is a human-readable name.
	Name string
	// Size is the element size in bytes, identical on every host (a
	// stated requirement of the paper's scheme).
	Size int
	// Cost counts the basic operations one element conversion performs.
	Cost CostUnits
	// convert is the element conversion routine (the reference path).
	convert ConvertFunc
	// plan is the compiled op-stream executed by the bulk fast path,
	// or nil for custom types, which only have the routine above.
	plan []planOp
}

// Field is one field of a compound type: Count consecutive elements of
// the type named by Type.
type Field struct {
	// Type is the field's element type (basic or previously registered).
	Type TypeID
	// Count is the number of consecutive elements (1 for a scalar;
	// >1 models an embedded array, converted by repeated calls).
	Count int
}

// denseCap bounds the dense lookup table below; identifiers past it
// (never reached by sequential registration, but possible in theory)
// fall back to the overflow map.
const denseCap = 4096

// Registry is the global static table mapping types to conversion
// routines. It must be built identically on every host before the DSM
// system starts (it is immutable afterwards).
//
// Type lookup is on the page-transfer hot path (every ConvertRegion
// starts with one), so registered types live in a dense slice indexed
// by TypeID; the overflow map exists only for identifiers beyond
// denseCap.
type Registry struct {
	dense    []*Type
	overflow map[TypeID]*Type
	nextID   TypeID
}

// NewRegistry creates a registry with the basic types pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		dense:  make([]*Type, FirstUserType),
		nextID: FirstUserType,
	}
	r.put(&Type{
		ID: Char, Name: "char", Size: 1,
		Cost:    CostUnits{Bytes: 1},
		convert: func([]byte, arch.Arch, arch.Arch, int32, *Report) error { return nil },
		plan:    []planOp{{opCopy, 1}},
	})
	r.put(&Type{
		ID: Int16, Name: "short", Size: 2,
		Cost:    CostUnits{Int16Ops: 1},
		convert: convertInt16,
		plan:    []planOp{{opSwap16, 1}},
	})
	r.put(&Type{
		ID: Int32, Name: "int", Size: 4,
		Cost:    CostUnits{Int32Ops: 1},
		convert: convertInt32,
		plan:    []planOp{{opSwap32, 1}},
	})
	r.put(&Type{
		ID: Float32, Name: "float", Size: 4,
		Cost:    CostUnits{Float32Ops: 1},
		convert: convertFloat32,
		plan:    []planOp{{opF32, 1}},
	})
	r.put(&Type{
		ID: Float64, Name: "double", Size: 8,
		Cost:    CostUnits{Float64Ops: 1},
		convert: convertFloat64,
		plan:    []planOp{{opF64, 1}},
	})
	r.put(&Type{
		ID: Pointer, Name: "pointer", Size: 4,
		Cost:    CostUnits{PointerOps: 1},
		convert: convertPointer,
		plan:    []planOp{{opPtr, 1}},
	})
	return r
}

func (r *Registry) put(t *Type) {
	if int(t.ID) < denseCap {
		for len(r.dense) <= int(t.ID) {
			r.dense = append(r.dense, nil)
		}
		r.dense[t.ID] = t
		return
	}
	if r.overflow == nil {
		r.overflow = make(map[TypeID]*Type)
	}
	r.overflow[t.ID] = t
}

// Get returns the type registered under id.
func (r *Registry) Get(id TypeID) (*Type, bool) {
	if int(id) < len(r.dense) {
		t := r.dense[id]
		return t, t != nil
	}
	t, ok := r.overflow[id]
	return t, ok
}

// MustGet returns the type registered under id, panicking if absent; use
// only for identifiers known to be registered (program invariants).
func (r *Registry) MustGet(id TypeID) *Type {
	t, ok := r.Get(id)
	if !ok {
		panic(fmt.Sprintf("conv: type %d not registered", id))
	}
	return t
}

// RegisterStruct registers a compound type as an ordered field list. The
// generated conversion routine calls each field's routine in order,
// which is exactly how the paper tells application programmers to write
// theirs. It returns the new type's identifier.
func (r *Registry) RegisterStruct(name string, fields []Field) (TypeID, error) {
	if len(fields) == 0 {
		return Invalid, fmt.Errorf("conv: struct %q has no fields", name)
	}
	var (
		size int
		cost CostUnits
	)
	resolved := make([]*Type, len(fields))
	for i, f := range fields {
		ft, ok := r.Get(f.Type)
		if !ok {
			return Invalid, fmt.Errorf("conv: struct %q field %d: type %d not registered", name, i, f.Type)
		}
		if f.Count <= 0 {
			return Invalid, fmt.Errorf("conv: struct %q field %d: count %d", name, i, f.Count)
		}
		resolved[i] = ft
		size += ft.Size * f.Count
		cost = cost.add(ft.Cost, f.Count)
	}
	counts := make([]int, len(fields))
	for i, f := range fields {
		counts[i] = f.Count
	}
	convert := func(elem []byte, from, to arch.Arch, ptrOff int32, rep *Report) error {
		off := 0
		for i, ft := range resolved {
			for j := 0; j < counts[i]; j++ {
				if err := ft.convert(elem[off:off+ft.Size], from, to, ptrOff, rep); err != nil {
					return err
				}
				off += ft.Size
			}
		}
		return nil
	}
	return r.register(name, size, cost, convert, compilePlan(fields, resolved))
}

// RegisterCustom registers a type with an application-supplied
// conversion routine (the paper's fully general escape hatch).
func (r *Registry) RegisterCustom(name string, size int, cost CostUnits, fn ConvertFunc) (TypeID, error) {
	if size <= 0 {
		return Invalid, fmt.Errorf("conv: custom type %q has size %d", name, size)
	}
	if fn == nil {
		return Invalid, fmt.Errorf("conv: custom type %q has no conversion routine", name)
	}
	return r.register(name, size, cost, fn, nil)
}

func (r *Registry) register(name string, size int, cost CostUnits, fn ConvertFunc, plan []planOp) (TypeID, error) {
	id := r.nextID
	r.nextID++
	r.put(&Type{ID: id, Name: name, Size: size, Cost: cost, convert: fn, plan: plan})
	return id, nil
}

// ConvertRegion converts, in place, the prefix of buf holding whole
// elements of type id from the source to the destination representation.
// Only full elements are converted; buf's length must be a multiple of
// the element size (the typed allocator guarantees this for allocated
// prefixes). If the architectures are compatible it is a no-op.
//
// Types with a compiled plan run the bulk kernels; custom types (and
// compounds containing them) run the reference per-element routine.
// The two paths are bit-identical in output and Report.
func (r *Registry) ConvertRegion(id TypeID, buf []byte, from, to arch.Arch, ptrOff int32) (Report, error) {
	var rep Report
	if from.Compatible(to) {
		return rep, nil
	}
	t, ok := r.Get(id)
	if !ok {
		return rep, fmt.Errorf("conv: type %d not registered", id)
	}
	if len(buf)%t.Size != 0 {
		return rep, fmt.Errorf("conv: region size %d not a multiple of %s element size %d", len(buf), t.Name, t.Size)
	}
	if t.plan != nil {
		rep.Elements = len(buf) / t.Size
		execPlan(t.plan, buf, t.Size, from, to, ptrOff, &rep)
		return rep, nil
	}
	// The reference walk runs in its own frame: its report is passed
	// through the type's dynamic convert function and escapes, and
	// sharing it would drag the plan path's report to the heap too.
	return referenceRegion(t, buf, from, to, ptrOff)
}

func referenceRegion(t *Type, buf []byte, from, to arch.Arch, ptrOff int32) (Report, error) {
	var rep Report
	err := convertRegionReference(t, buf, from, to, ptrOff, &rep)
	return rep, err
}

// ConvertRegionReference converts the region with the per-element
// reference routine, bypassing any compiled plan. It is the oracle the
// differential tests compare the plan path against, and is otherwise
// identical in contract to ConvertRegion.
func (r *Registry) ConvertRegionReference(id TypeID, buf []byte, from, to arch.Arch, ptrOff int32) (Report, error) {
	var rep Report
	if from.Compatible(to) {
		return rep, nil
	}
	t, ok := r.Get(id)
	if !ok {
		return rep, fmt.Errorf("conv: type %d not registered", id)
	}
	if len(buf)%t.Size != 0 {
		return rep, fmt.Errorf("conv: region size %d not a multiple of %s element size %d", len(buf), t.Name, t.Size)
	}
	return referenceRegion(t, buf, from, to, ptrOff)
}

func convertRegionReference(t *Type, buf []byte, from, to arch.Arch, ptrOff int32, rep *Report) error {
	for off := 0; off < len(buf); off += t.Size {
		if err := t.convert(buf[off:off+t.Size], from, to, ptrOff, rep); err != nil {
			return fmt.Errorf("conv: element at %d: %w", off, err)
		}
		rep.Elements++
	}
	return nil
}

func convertInt16(elem []byte, from, to arch.Arch, _ int32, _ *Report) error {
	if from.Order != to.Order {
		elem[0], elem[1] = elem[1], elem[0]
	}
	return nil
}

func convertInt32(elem []byte, from, to arch.Arch, _ int32, _ *Report) error {
	if from.Order != to.Order {
		elem[0], elem[1], elem[2], elem[3] = elem[3], elem[2], elem[1], elem[0]
	}
	return nil
}

func convertPointer(elem []byte, from, to arch.Arch, ptrOff int32, _ *Report) error {
	v := from.Order.Binary().Uint32(elem)
	// The null pointer is universal and is not rebased.
	if v != 0 {
		v = uint32(int32(v) + ptrOff)
	}
	to.Order.Binary().PutUint32(elem, v)
	return nil
}

func convertFloat32(elem []byte, from, to arch.Arch, _ int32, rep *Report) error {
	if from.Floats == to.Floats {
		// Same float format, different byte order (not the case for the
		// paper's two machines, but handled for completeness).
		return convertInt32(elem, from, to, 0, rep)
	}
	if from.Floats == arch.IEEE754 {
		bits := from.Order.Binary().Uint32(elem)
		rep.note(vaxfloat.FromIEEESingle(bits, elem))
		return nil
	}
	bits := vaxfloat.ToIEEESingle(elem)
	to.Order.Binary().PutUint32(elem, bits)
	return nil
}

func convertFloat64(elem []byte, from, to arch.Arch, _ int32, rep *Report) error {
	if from.Floats == to.Floats {
		if from.Order != to.Order {
			v := from.Order.Binary().Uint64(elem)
			to.Order.Binary().PutUint64(elem, v)
		}
		return nil
	}
	if from.Floats == arch.IEEE754 {
		bits := from.Order.Binary().Uint64(elem)
		rep.note(vaxfloat.FromIEEEDouble(bits, elem))
		return nil
	}
	bits := vaxfloat.ToIEEEDouble(elem)
	to.Order.Binary().PutUint64(elem, bits)
	return nil
}

// The helpers below read and write values in a given architecture's
// native memory representation. The DSM typed accessors use them so that
// applications manipulate values while pages hold native bytes.

// PutInt16 stores v at b[0:2] in a's representation.
func PutInt16(a arch.Arch, b []byte, v int16) { a.Order.Binary().PutUint16(b, uint16(v)) }

// GetInt16 loads an int16 from b[0:2] in a's representation.
func GetInt16(a arch.Arch, b []byte) int16 { return int16(a.Order.Binary().Uint16(b)) }

// PutInt32 stores v at b[0:4] in a's representation.
func PutInt32(a arch.Arch, b []byte, v int32) { a.Order.Binary().PutUint32(b, uint32(v)) }

// GetInt32 loads an int32 from b[0:4] in a's representation.
func GetInt32(a arch.Arch, b []byte) int32 { return int32(a.Order.Binary().Uint32(b)) }

// PutFloat32 stores v at b[0:4] in a's representation (IEEE or VAX F).
// It returns the conversion outcome for VAX targets.
func PutFloat32(a arch.Arch, b []byte, v float32) vaxfloat.Outcome {
	if a.Floats == arch.IEEE754 {
		a.Order.Binary().PutUint32(b, math.Float32bits(v))
		return vaxfloat.OK
	}
	return vaxfloat.EncodeF(float64(v), b)
}

// GetFloat32 loads a float32 from b[0:4] in a's representation. VAX
// reserved operands read as NaN.
func GetFloat32(a arch.Arch, b []byte) float32 {
	if a.Floats == arch.IEEE754 {
		return math.Float32frombits(a.Order.Binary().Uint32(b))
	}
	v, _ := vaxfloat.DecodeF(b)
	return float32(v)
}

// PutFloat64 stores v at b[0:8] in a's representation (IEEE or VAX G).
func PutFloat64(a arch.Arch, b []byte, v float64) vaxfloat.Outcome {
	if a.Floats == arch.IEEE754 {
		a.Order.Binary().PutUint64(b, math.Float64bits(v))
		return vaxfloat.OK
	}
	return vaxfloat.EncodeG(v, b)
}

// GetFloat64 loads a float64 from b[0:8] in a's representation.
func GetFloat64(a arch.Arch, b []byte) float64 {
	if a.Floats == arch.IEEE754 {
		return math.Float64frombits(a.Order.Binary().Uint64(b))
	}
	v, _ := vaxfloat.DecodeG(b)
	return v
}

// PutPointer stores a 32-bit DSM address at b[0:4] in a's representation.
func PutPointer(a arch.Arch, b []byte, addr uint32) { a.Order.Binary().PutUint32(b, addr) }

// GetPointer loads a 32-bit DSM address from b[0:4] in a's representation.
func GetPointer(a arch.Arch, b []byte) uint32 { return a.Order.Binary().Uint32(b) }

// Interface check: binary.ByteOrder is what arch exposes; assert the two
// concrete orders satisfy it (compile-time documentation).
var (
	_ binary.ByteOrder = arch.BigEndian.Binary()
	_ binary.ByteOrder = arch.LittleEndian.Binary()
)
