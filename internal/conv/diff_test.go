package conv

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// TestDiffBuildApply pins the basic lifecycle: a diff built from two
// images, round-tripped through the wire form, applied to the old image,
// reproduces the new image exactly.
func TestDiffBuildApply(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(7))
	for _, id := range []TypeID{Char, Int16, Int32, Float32, Float64, Pointer} {
		typ := r.MustGet(id)
		for trial := 0; trial < 16; trial++ {
			n := (1 + rng.Intn(200)) * typ.Size
			old := make([]byte, n)
			fillRandom(t, rng, old)
			new := append([]byte(nil), old...)
			// Mutate a random subset of elements, some adjacent.
			for e := 0; e*typ.Size < n; e++ {
				if rng.Intn(4) == 0 {
					new[e*typ.Size+rng.Intn(typ.Size)] ^= 0x5a
				}
			}
			d, err := r.BuildDiff(id, old, new)
			if err != nil {
				t.Fatal(err)
			}
			wire := make([]byte, d.EncodedSize())
			if got := d.EncodeTo(wire); got != len(wire) {
				t.Fatalf("EncodeTo wrote %d of %d bytes", got, len(wire))
			}
			dec, err := DecodeDiff(id, typ.Size, wire)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Elements() != d.Elements() || len(dec.Runs) != len(d.Runs) {
				t.Fatalf("decode mismatch: %d runs/%d elems, want %d/%d",
					len(dec.Runs), dec.Elements(), len(d.Runs), d.Elements())
			}
			got := append([]byte(nil), old...)
			if err := r.Apply(&dec, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, new) {
				t.Fatalf("type %d: apply(diff, old) != new", id)
			}
		}
	}
}

// TestDiffEmpty pins that identical images produce an empty diff whose
// application is a no-op.
func TestDiffEmpty(t *testing.T) {
	r := NewRegistry()
	img := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	d, err := r.BuildDiff(Int32, img, img)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || d.Elements() != 0 {
		t.Fatalf("diff of identical images not empty: %+v", d)
	}
	cp := append([]byte(nil), img...)
	if err := r.Apply(&d, cp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp, img) {
		t.Fatal("empty diff changed the image")
	}
}

// TestDiffCoalesce pins run coalescing: adjacent changed elements form
// one run.
func TestDiffCoalesce(t *testing.T) {
	r := NewRegistry()
	old := make([]byte, 10*4)
	new := append([]byte(nil), old...)
	for _, e := range []int{2, 3, 4, 7} {
		new[e*4] = 0xff
	}
	d, err := r.BuildDiff(Int32, old, new)
	if err != nil {
		t.Fatal(err)
	}
	want := []DiffRun{{Elem: 2, Count: 3}, {Elem: 7, Count: 1}}
	if len(d.Runs) != len(want) || d.Runs[0] != want[0] || d.Runs[1] != want[1] {
		t.Fatalf("runs = %+v, want %+v", d.Runs, want)
	}
	if len(d.Data) != 4*4 {
		t.Fatalf("payload %d bytes, want 16", len(d.Data))
	}
}

// TestDiffDecodeRejects pins the decoder's bounds checks.
func TestDiffDecodeRejects(t *testing.T) {
	if _, err := DecodeDiff(Int32, 4, []byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	// Header claims one run but no run entry follows.
	if _, err := DecodeDiff(Int32, 4, []byte{0, 0, 0, 1}); err == nil {
		t.Error("missing run entry accepted")
	}
	// One run of two elements but payload holds one.
	buf := make([]byte, 4+8+4)
	buf[3] = 1  // nruns=1
	buf[11] = 2 // count=2
	if _, err := DecodeDiff(Int32, 4, buf); err == nil {
		t.Error("short payload accepted")
	}
}

// diffConvertCheck asserts the composition property: converting the old
// image and applying the converted diff is bit-identical to converting
// the new image whole. This is what lets RC ship diffs between
// incompatible machines with the page conversion machinery unchanged.
func diffConvertCheck(t *testing.T, r *Registry, id TypeID, old, new []byte, from, to arch.Arch, ptrOff int32) {
	t.Helper()
	d, err := r.BuildDiff(id, old, new)
	if err != nil {
		t.Fatal(err)
	}
	// Wire round-trip, as the release path ships it.
	wire := make([]byte, d.EncodedSize())
	d.EncodeTo(wire)
	dec, err := DecodeDiff(id, r.MustGet(id).Size, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ConvertDiff(&dec, from, to, ptrOff); err != nil {
		t.Fatal(err)
	}
	got := append([]byte(nil), old...)
	if _, err := r.ConvertRegion(id, got, from, to, ptrOff); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(&dec, got); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), new...)
	if _, err := r.ConvertRegion(id, want, from, to, ptrOff); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("type %d %v→%v: byte %d differs: diff-path=%02x page-path=%02x",
					id, from.Kind, to.Kind, i, got[i], want[i])
			}
		}
	}
}

// TestDiffConvertMatchesPage drives the composition property over every
// basic type, every architecture pair, and buffers laced with the float
// special values (NaN, Inf, denormals, VAX reserved operands) and null
// pointers.
func TestDiffConvertMatchesPage(t *testing.T) {
	r := NewRegistry()
	rng := rand.New(rand.NewSource(11))
	for _, pair := range archPairs() {
		for _, id := range []TypeID{Char, Int16, Int32, Float32, Float64, Pointer} {
			typ := r.MustGet(id)
			for trial := 0; trial < 6; trial++ {
				n := (1 + rng.Intn(200)) * typ.Size
				old := make([]byte, n)
				fillRandom(t, rng, old)
				switch id {
				case Float32:
					sprinkle32(rng, old, specialFloat32Bits)
					sprinkle32(rng, old, vaxSpecialWords)
				case Float64:
					sprinkle64(rng, old, specialFloat64Bits)
				}
				new := append([]byte(nil), old...)
				for e := 0; e*typ.Size < n; e++ {
					if rng.Intn(3) == 0 {
						fillRandom(t, rng, new[e*typ.Size:(e+1)*typ.Size])
					}
				}
				switch id {
				case Float32:
					sprinkle32(rng, new, specialFloat32Bits)
				case Float64:
					sprinkle64(rng, new, specialFloat64Bits)
				case Pointer:
					for i := 0; i+4 <= len(new); i += 4 {
						if rng.Intn(5) == 0 {
							copy(new[i:i+4], []byte{0, 0, 0, 0})
						}
					}
				}
				ptrOff := int32(rng.Intn(1<<20) - 1<<19)
				diffConvertCheck(t, r, id, old, new, pair[0], pair[1], ptrOff)
			}
		}
	}
}

// FuzzDiffConvert fuzzes the composition property directly: arbitrary
// old/new images through every basic type and a nested compound, diff
// apply+convert vs whole-page convert, all architecture pairs.
func FuzzDiffConvert(f *testing.F) {
	f.Add([]byte{0x7f, 0x80, 0x00, 0x00, 0x00, 0x00, 0x80, 0x00},
		[]byte{0xff, 0xf0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01}, uint8(4), int32(4096))
	f.Add(bytes.Repeat([]byte{0x00}, 32), bytes.Repeat([]byte{0xa5}, 32), uint8(3), int32(-65536))
	f.Add([]byte{1, 2, 3, 4}, []byte{1, 2, 3, 4}, uint8(6), int32(0))
	r := NewRegistry()
	compound, err := r.RegisterStruct("dz", []Field{
		{Type: Int16, Count: 1},
		{Type: Float32, Count: 2},
		{Type: Float64, Count: 1},
		{Type: Pointer, Count: 1},
		{Type: Char, Count: 2},
	})
	if err != nil {
		f.Fatal(err)
	}
	ids := []TypeID{Char, Int16, Int32, Float32, Float64, Pointer, compound}
	pairs := archPairs()
	f.Fuzz(func(t *testing.T, old, new []byte, sel uint8, ptrOff int32) {
		id := ids[int(sel)%len(ids)]
		typ := r.MustGet(id)
		n := min(len(old), len(new)) / typ.Size * typ.Size
		for _, pair := range pairs {
			diffConvertCheck(t, r, id, old[:n], new[:n], pair[0], pair[1], ptrOff)
		}
	})
}
