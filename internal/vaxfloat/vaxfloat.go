// Package vaxfloat encodes and decodes the VAX F_floating (32-bit) and
// G_floating (64-bit) formats used by the CVAX processors of the DEC
// Firefly, and converts between them and IEEE 754.
//
// Both VAX formats represent (-1)^s × 0.1f₂ × 2^(e-bias): the significand
// lies in [0.5, 1) with a hidden leading fraction bit, unlike IEEE's
// [1, 2). In memory a VAX float is a sequence of little-endian 16-bit
// words whose *first* word carries the sign, exponent and high fraction
// bits — the famous "middle-endian" layout, reproduced here byte for
// byte.
//
// The VAX has no NaNs, infinities, or gradual underflow. As the paper
// notes (§2.3), converting IEEE values therefore requires extra checks
// for these cases; this package detects them and applies the documented
// policy (NaN → reserved operand, ±Inf/overflow → clamp to the largest
// magnitude, underflow → zero), reporting what happened through Outcome
// so callers can keep precision-loss statistics.
package vaxfloat

import (
	"encoding/binary"
	"math"
)

// Outcome classifies what happened during one IEEE→VAX conversion.
type Outcome int

const (
	// OK means the value was representable (possibly rounded).
	OK Outcome = iota + 1
	// Overflowed means |v| exceeded the VAX range and was clamped to
	// the largest finite VAX magnitude. Infinities also report this.
	Overflowed
	// Underflowed means |v| was below the smallest VAX magnitude and
	// was flushed to zero.
	Underflowed
	// WasNaN means v was an IEEE NaN and was encoded as the VAX
	// reserved operand (sign=1, exponent=0), which faults when read.
	WasNaN
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Overflowed:
		return "overflow"
	case Underflowed:
		return "underflow"
	case WasNaN:
		return "nan"
	default:
		return "unknown"
	}
}

// F_floating parameters: 8-bit exponent, bias 128, 23 stored fraction
// bits (24 significant bits with the hidden bit).
const (
	fBias     = 128
	fExpMax   = 255
	fFracBits = 23
)

// G_floating parameters: 11-bit exponent, bias 1024, 52 stored fraction
// bits (53 significant bits with the hidden bit).
const (
	gBias     = 1024
	gExpMax   = 2047
	gFracBits = 52
)

// MaxF is the largest finite F_floating value.
var MaxF = math.Ldexp(float64(1<<24-1)/(1<<24), 127)

// MinF is the smallest positive F_floating value.
var MinF = math.Ldexp(0.5, -fBias+1)

// MaxG is the largest finite G_floating value.
var MaxG = math.Ldexp(float64(1<<53-1)/(1<<53), 1023)

// MinG is the smallest positive G_floating value.
var MinG = math.Ldexp(0.5, -gBias+1)

// EncodeF encodes v into the 4-byte VAX F_floating memory image at
// b[0:4], applying the conversion policy for unrepresentable values.
func EncodeF(v float64, b []byte) Outcome {
	_ = b[3]
	sign := uint16(0)
	if math.Signbit(v) {
		sign = 1
	}
	switch {
	case math.IsNaN(v):
		// Reserved operand: sign=1, exponent=0, fraction=0.
		binary.LittleEndian.PutUint16(b[0:2], 1<<15)
		binary.LittleEndian.PutUint16(b[2:4], 0)
		return WasNaN
	case math.IsInf(v, 0):
		putF(b, sign, fExpMax, 1<<fFracBits-1)
		return Overflowed
	case v == 0:
		putF(b, 0, 0, 0)
		return OK
	}
	frac, exp := math.Frexp(math.Abs(v)) // frac in [0.5,1)
	// Round the significand to 24 bits; rounding can carry into the
	// exponent (0.999…→1.0 becomes 0.5 with exponent+1).
	scaled := uint64(math.RoundToEven(frac * (1 << (fFracBits + 1))))
	if scaled == 1<<(fFracBits+1) {
		scaled >>= 1
		exp++
	}
	expField := exp + fBias
	if expField > fExpMax {
		putF(b, sign, fExpMax, 1<<fFracBits-1)
		return Overflowed
	}
	if expField < 1 {
		putF(b, 0, 0, 0)
		return Underflowed
	}
	putF(b, sign, uint16(expField), uint32(scaled)&(1<<fFracBits-1))
	return OK
}

func putF(b []byte, sign, expField uint16, frac23 uint32) {
	w0 := sign<<15 | expField<<7 | uint16(frac23>>16)
	w1 := uint16(frac23)
	binary.LittleEndian.PutUint16(b[0:2], w0)
	binary.LittleEndian.PutUint16(b[2:4], w1)
}

// DecodeF decodes the 4-byte VAX F_floating memory image at b[0:4].
// ok is false for the reserved operand (which faults on a real VAX).
func DecodeF(b []byte) (v float64, ok bool) {
	_ = b[3]
	w0 := binary.LittleEndian.Uint16(b[0:2])
	w1 := binary.LittleEndian.Uint16(b[2:4])
	sign := w0 >> 15
	expField := int(w0>>7) & 0xff
	frac23 := uint32(w0&0x7f)<<16 | uint32(w1)
	if expField == 0 {
		if sign == 1 {
			return math.NaN(), false // reserved operand
		}
		return 0, true // true zero (fraction ignored by hardware)
	}
	mant := float64(1<<fFracBits|frac23) / (1 << (fFracBits + 1))
	v = math.Ldexp(mant, expField-fBias)
	if sign == 1 {
		v = -v
	}
	return v, true
}

// EncodeG encodes v into the 8-byte VAX G_floating memory image at
// b[0:8], applying the conversion policy for unrepresentable values.
func EncodeG(v float64, b []byte) Outcome {
	_ = b[7]
	sign := uint16(0)
	if math.Signbit(v) {
		sign = 1
	}
	switch {
	case math.IsNaN(v):
		putG(b, 1<<15, 0)
		return WasNaN
	case math.IsInf(v, 0):
		putG(b, sign<<15|uint16(gExpMax)<<4|0xf, 1<<48-1)
		return Overflowed
	case v == 0:
		putG(b, 0, 0)
		return OK
	}
	frac, exp := math.Frexp(math.Abs(v))
	scaled := uint64(math.RoundToEven(frac * (1 << (gFracBits + 1))))
	if scaled == 1<<(gFracBits+1) {
		scaled >>= 1
		exp++
	}
	expField := exp + gBias
	if expField > gExpMax {
		putG(b, sign<<15|uint16(gExpMax)<<4|0xf, 1<<48-1)
		return Overflowed
	}
	if expField < 1 {
		putG(b, 0, 0)
		return Underflowed
	}
	frac52 := scaled & (1<<gFracBits - 1)
	w0 := sign<<15 | uint16(expField)<<4 | uint16(frac52>>48)
	putG(b, w0, frac52&(1<<48-1))
	return OK
}

func putG(b []byte, w0 uint16, frac48 uint64) {
	binary.LittleEndian.PutUint16(b[0:2], w0)
	binary.LittleEndian.PutUint16(b[2:4], uint16(frac48>>32))
	binary.LittleEndian.PutUint16(b[4:6], uint16(frac48>>16))
	binary.LittleEndian.PutUint16(b[6:8], uint16(frac48))
}

// DecodeG decodes the 8-byte VAX G_floating memory image at b[0:8].
// ok is false for the reserved operand.
func DecodeG(b []byte) (v float64, ok bool) {
	_ = b[7]
	w0 := binary.LittleEndian.Uint16(b[0:2])
	w1 := binary.LittleEndian.Uint16(b[2:4])
	w2 := binary.LittleEndian.Uint16(b[4:6])
	w3 := binary.LittleEndian.Uint16(b[6:8])
	sign := w0 >> 15
	expField := int(w0>>4) & 0x7ff
	frac52 := uint64(w0&0xf)<<48 | uint64(w1)<<32 | uint64(w2)<<16 | uint64(w3)
	if expField == 0 {
		if sign == 1 {
			return math.NaN(), false
		}
		return 0, true
	}
	mant := float64(1<<gFracBits|frac52) / (1 << (gFracBits + 1))
	v = math.Ldexp(mant, expField-gBias)
	if sign == 1 {
		v = -v
	}
	return v, true
}

// FromIEEESingle converts the 4 bytes of an IEEE 754 single (given as its
// bit pattern) to a VAX F_floating image in dst[0:4].
func FromIEEESingle(bits uint32, dst []byte) Outcome {
	return EncodeF(float64(math.Float32frombits(bits)), dst)
}

// ToIEEESingle converts the VAX F_floating image in src[0:4] to IEEE 754
// single bits. The reserved operand converts to a quiet NaN.
func ToIEEESingle(src []byte) uint32 {
	v, ok := DecodeF(src)
	if !ok {
		return math.Float32bits(float32(math.NaN()))
	}
	return math.Float32bits(float32(v))
}

// FromIEEEDouble converts IEEE 754 double bits to a VAX G_floating image
// in dst[0:8].
func FromIEEEDouble(bits uint64, dst []byte) Outcome {
	return EncodeG(math.Float64frombits(bits), dst)
}

// ToIEEEDouble converts the VAX G_floating image in src[0:8] to IEEE 754
// double bits. The reserved operand converts to a quiet NaN.
func ToIEEEDouble(src []byte) uint64 {
	v, ok := DecodeG(src)
	if !ok {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(v)
}
