package vaxfloat

// Bulk IEEE↔VAX conversion kernels. The element encoders in this
// package (EncodeF/EncodeG and friends) go through float64 arithmetic —
// Frexp, RoundToEven, Ldexp — per value, which Table 3 of the paper
// shows dominating heterogeneous page transfers. The region kernels
// below convert packed values with pure integer bit manipulation on the
// fast path and fall back to the element encoders only for the values
// that actually need their care.
//
// Fast-path eligibility is an exponent-field range check:
//
//   - IEEE→VAX: an IEEE normal whose VAX exponent (E_ieee + 2) still
//     fits the VAX exponent field maps 1:1 — identical fraction bits,
//     exponent re-biased by 2, words shuffled into the VAX
//     middle-endian layout. Zeros, denormals, NaNs, infinities and
//     too-large normals take the element encoder (clamp/flush/reserved
//     per the documented policy), and are counted exactly as it counts
//     them.
//   - VAX→IEEE: a VAX value with exponent field ≥ 3 maps to an IEEE
//     normal with the same fraction and exponent field E_vax - 2.
//     Exponents 0–2 are the true zero, the reserved operand, and the
//     two values that land in IEEE's denormal range; they take the
//     element decoder.
//
// The fast path is bit-identical to the element path: for an IEEE
// normal, Frexp yields the significand exactly (frac×2^(bits+1) is an
// integer, so RoundToEven is the identity) and the re-biased exponent
// equals E_ieee + 2; the differential tests in conv assert this over
// arbitrary bit patterns.

import (
	"encoding/binary"
	"math/bits"
)

// IEEEToFRegion converts packed IEEE 754 singles to VAX F_floating in
// place. srcBig says whether the IEEE values are stored big-endian.
// It returns the overflow/underflow/NaN counts the element encoder
// would have reported.
func IEEEToFRegion(buf []byte, srcBig bool) (ov, uf, nan int) {
	for i := 0; i+4 <= len(buf); i += 4 {
		e := buf[i : i+4 : i+4]
		v := binary.LittleEndian.Uint32(e)
		if srcBig {
			v = bits.ReverseBytes32(v)
		}
		exp := v >> 23 & 0xff
		if exp-1 < 253 { // 1 ≤ exp ≤ 253: normal in, normal out
			frac := v & (1<<23 - 1)
			w0 := v>>31<<15 | (exp+2)<<7 | frac>>16
			binary.LittleEndian.PutUint32(e, w0|frac<<16)
			continue
		}
		switch FromIEEESingle(v, e) {
		case OK:
		case Overflowed:
			ov++
		case Underflowed:
			uf++
		case WasNaN:
			nan++
		}
	}
	return ov, uf, nan
}

// FToIEEERegion converts packed VAX F_floating values to IEEE 754
// singles in place, stored big-endian when dstBig is set. Reserved
// operands convert to quiet NaNs, as in ToIEEESingle.
func FToIEEERegion(buf []byte, dstBig bool) {
	for i := 0; i+4 <= len(buf); i += 4 {
		e := buf[i : i+4 : i+4]
		v := binary.LittleEndian.Uint32(e)
		exp := v >> 7 & 0xff
		var out uint32
		if exp >= 3 { // maps to an IEEE normal
			frac := (v&0x7f)<<16 | v>>16
			out = v>>15&1<<31 | (exp-2)<<23 | frac
		} else { // zero, reserved operand, or IEEE-denormal range
			out = ToIEEESingle(e)
		}
		if dstBig {
			out = bits.ReverseBytes32(out)
		}
		binary.LittleEndian.PutUint32(e, out)
	}
}

// IEEEToGRegion converts packed IEEE 754 doubles to VAX G_floating in
// place. srcBig says whether the IEEE values are stored big-endian.
func IEEEToGRegion(buf []byte, srcBig bool) (ov, uf, nan int) {
	for i := 0; i+8 <= len(buf); i += 8 {
		e := buf[i : i+8 : i+8]
		v := binary.LittleEndian.Uint64(e)
		if srcBig {
			v = bits.ReverseBytes64(v)
		}
		exp := uint32(v>>52) & 0x7ff
		if exp-1 < 2045 { // 1 ≤ exp ≤ 2045: normal in, normal out
			frac := v & (1<<52 - 1)
			w0 := v>>63<<15 | uint64(exp+2)<<4 | frac>>48
			out := w0 | frac>>32&0xffff<<16 | frac>>16&0xffff<<32 | frac&0xffff<<48
			binary.LittleEndian.PutUint64(e, out)
			continue
		}
		switch FromIEEEDouble(v, e) {
		case OK:
		case Overflowed:
			ov++
		case Underflowed:
			uf++
		case WasNaN:
			nan++
		}
	}
	return ov, uf, nan
}

// GToIEEERegion converts packed VAX G_floating values to IEEE 754
// doubles in place, stored big-endian when dstBig is set.
func GToIEEERegion(buf []byte, dstBig bool) {
	for i := 0; i+8 <= len(buf); i += 8 {
		e := buf[i : i+8 : i+8]
		v := binary.LittleEndian.Uint64(e)
		exp := uint32(v>>4) & 0x7ff
		var out uint64
		if exp >= 3 { // maps to an IEEE normal
			frac := (v&0xf)<<48 | v>>16&0xffff<<32 | v>>32&0xffff<<16 | v>>48
			out = v>>15&1<<63 | uint64(exp-2)<<52 | frac
		} else { // zero, reserved operand, or IEEE-denormal range
			out = ToIEEEDouble(e)
		}
		if dstBig {
			out = bits.ReverseBytes64(out)
		}
		binary.LittleEndian.PutUint64(e, out)
	}
}
