package vaxfloat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeFKnownValues(t *testing.T) {
	tests := []struct {
		give float64
		w0   uint16 // first little-endian word: sign|exp|frac-hi
		w1   uint16
	}{
		{give: 1.0, w0: 0x4080, w1: 0x0000},  // 0.5 × 2^1, exp field 129
		{give: -1.0, w0: 0xc080, w1: 0x0000}, // sign bit set
		{give: 0.5, w0: 0x4000, w1: 0x0000},  // exp field 128
		{give: 2.0, w0: 0x4100, w1: 0x0000},  // exp field 130
		{give: 0.0, w0: 0x0000, w1: 0x0000},
		{give: 3.0, w0: 0x4140, w1: 0x0000}, // 0.75 × 2^2, frac hi bit set
	}
	for _, tt := range tests {
		var b [4]byte
		if out := EncodeF(tt.give, b[:]); out != OK {
			t.Errorf("EncodeF(%v) outcome %v", tt.give, out)
		}
		w0 := uint16(b[0]) | uint16(b[1])<<8
		w1 := uint16(b[2]) | uint16(b[3])<<8
		if w0 != tt.w0 || w1 != tt.w1 {
			t.Errorf("EncodeF(%v) = %04x %04x, want %04x %04x", tt.give, w0, w1, tt.w0, tt.w1)
		}
	}
}

func TestDecodeFRoundTripExactValues(t *testing.T) {
	// Values with ≤24 significant bits and in-range exponents must
	// round-trip exactly.
	values := []float64{0, 1, -1, 0.5, 2, 3, 0.75, 1234.5, -98304, 0.015625}
	for _, v := range values {
		var b [4]byte
		if out := EncodeF(v, b[:]); out != OK {
			t.Fatalf("EncodeF(%v) outcome %v", v, out)
		}
		got, ok := DecodeF(b[:])
		if !ok || got != v {
			t.Errorf("round trip %v -> %v (ok=%v)", v, got, ok)
		}
	}
}

func TestEncodeFOverflowClampsToMax(t *testing.T) {
	var b [4]byte
	if out := EncodeF(1e39, b[:]); out != Overflowed {
		t.Fatalf("outcome %v, want Overflowed", out)
	}
	got, ok := DecodeF(b[:])
	if !ok || got != MaxF {
		t.Fatalf("clamped to %v, want MaxF=%v", got, MaxF)
	}
	if out := EncodeF(math.Inf(1), b[:]); out != Overflowed {
		t.Fatalf("Inf outcome %v, want Overflowed", out)
	}
	if out := EncodeF(math.Inf(-1), b[:]); out != Overflowed {
		t.Fatalf("-Inf outcome %v, want Overflowed", out)
	}
	got, _ = DecodeF(b[:])
	if got != -MaxF {
		t.Fatalf("-Inf clamped to %v, want -MaxF", got)
	}
}

func TestEncodeFUnderflowFlushesToZero(t *testing.T) {
	var b [4]byte
	if out := EncodeF(1e-40, b[:]); out != Underflowed {
		t.Fatalf("outcome %v, want Underflowed", out)
	}
	got, ok := DecodeF(b[:])
	if !ok || got != 0 {
		t.Fatalf("flushed to %v, want 0", got)
	}
}

func TestEncodeFNaNReservedOperand(t *testing.T) {
	var b [4]byte
	if out := EncodeF(math.NaN(), b[:]); out != WasNaN {
		t.Fatalf("outcome %v, want WasNaN", out)
	}
	_, ok := DecodeF(b[:])
	if ok {
		t.Fatal("reserved operand decoded as a valid value")
	}
}

func TestLargeIEEEDenormalsRepresentableInF(t *testing.T) {
	// VAX F minimum ≈ 2.94e-39; large IEEE single denormals (≈1.1e-38)
	// exceed it and must convert without underflow.
	v := 1.1e-38
	var b [4]byte
	if out := EncodeF(v, b[:]); out != OK {
		t.Fatalf("outcome %v, want OK", out)
	}
	got, _ := DecodeF(b[:])
	if rel := math.Abs(got-v) / v; rel > 1e-6 {
		t.Fatalf("denormal converted to %v (rel err %v)", got, rel)
	}
}

func TestEncodeGKnownValues(t *testing.T) {
	var b [8]byte
	if out := EncodeG(1.0, b[:]); out != OK {
		t.Fatalf("outcome %v", out)
	}
	// 1.0 = 0.5 × 2^1: exponent field 1025 = 0x401, w0 = 0x401<<4 = 0x4010.
	w0 := uint16(b[0]) | uint16(b[1])<<8
	if w0 != 0x4010 {
		t.Fatalf("G encode 1.0 w0 = %04x, want 4010", w0)
	}
}

func TestGRoundTripExactDoubles(t *testing.T) {
	values := []float64{0, 1, -1, 0.5, 1e300, -2.5e-300, 3.141592653589793, 6.02214076e23}
	for _, v := range values {
		var b [8]byte
		if out := EncodeG(v, b[:]); out != OK {
			t.Fatalf("EncodeG(%v) outcome %v", v, out)
		}
		got, ok := DecodeG(b[:])
		if !ok || got != v {
			t.Errorf("G round trip %v -> %v", v, got)
		}
	}
}

func TestGOverflowNearIEEEMax(t *testing.T) {
	// IEEE doubles at or above 2^1023 exceed the G range and clamp.
	var b [8]byte
	if out := EncodeG(math.MaxFloat64, b[:]); out != Overflowed {
		t.Fatalf("outcome %v, want Overflowed", out)
	}
	got, _ := DecodeG(b[:])
	if got != MaxG {
		t.Fatalf("clamped to %v, want MaxG", got)
	}
}

func TestGNaNAndUnderflow(t *testing.T) {
	var b [8]byte
	if out := EncodeG(math.NaN(), b[:]); out != WasNaN {
		t.Fatalf("NaN outcome %v", out)
	}
	if _, ok := DecodeG(b[:]); ok {
		t.Fatal("G reserved operand decoded as valid")
	}
	if out := EncodeG(1e-320, b[:]); out != Underflowed {
		t.Fatalf("underflow outcome %v", out)
	}
}

func TestRangeConstants(t *testing.T) {
	if MaxF < 1.7e38 || MaxF > 1.71e38 {
		t.Errorf("MaxF = %v, want ≈1.7e38", MaxF)
	}
	if MinF < 2.9e-39 || MinF > 3.0e-39 {
		t.Errorf("MinF = %v, want ≈2.94e-39", MinF)
	}
	var b [4]byte
	if out := EncodeF(MaxF, b[:]); out != OK {
		t.Errorf("MaxF does not encode: %v", out)
	}
	if out := EncodeF(MinF, b[:]); out != OK {
		t.Errorf("MinF does not encode: %v", out)
	}
}

func TestPropertyFRoundTripWithin1ULP(t *testing.T) {
	f := func(v float32) bool {
		fv := float64(v)
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			return true
		}
		if math.Abs(fv) > MaxF || (fv != 0 && math.Abs(fv) < MinF) {
			return true
		}
		var b [4]byte
		if EncodeF(fv, b[:]) != OK {
			return false
		}
		got, ok := DecodeF(b[:])
		if !ok {
			return false
		}
		if fv == 0 {
			return got == 0
		}
		// 24-bit significands on both sides: at most 1 ulp of float32.
		ulp := math.Abs(fv) / (1 << 23)
		return math.Abs(got-fv) <= ulp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGRoundTripExactForInRangeDoubles(t *testing.T) {
	// G_floating has a full 53-bit significand, so every in-range IEEE
	// double must round-trip exactly.
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		if math.Abs(v) > MaxG || (v != 0 && math.Abs(v) < MinG) {
			return true
		}
		var b [8]byte
		if EncodeG(v, b[:]) != OK {
			return false
		}
		got, ok := DecodeG(b[:])
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodePreservesSign(t *testing.T) {
	f := func(v float32) bool {
		fv := float64(v)
		if math.IsNaN(fv) || fv == 0 {
			return true
		}
		var b [4]byte
		EncodeF(fv, b[:])
		got, ok := DecodeF(b[:])
		if !ok {
			return true
		}
		return got == 0 || math.Signbit(got) == math.Signbit(fv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIEEESingleBridging(t *testing.T) {
	v := float32(2.75)
	var b [4]byte
	if out := FromIEEESingle(math.Float32bits(v), b[:]); out != OK {
		t.Fatalf("outcome %v", out)
	}
	back := math.Float32frombits(ToIEEESingle(b[:]))
	if back != v {
		t.Fatalf("bridged %v -> %v", v, back)
	}
}

func TestIEEEDoubleBridging(t *testing.T) {
	v := 2.718281828459045
	var b [8]byte
	if out := FromIEEEDouble(math.Float64bits(v), b[:]); out != OK {
		t.Fatalf("outcome %v", out)
	}
	back := math.Float64frombits(ToIEEEDouble(b[:]))
	if back != v {
		t.Fatalf("bridged %v -> %v", v, back)
	}
}

func TestReservedOperandBridgesToNaN(t *testing.T) {
	var b [4]byte
	EncodeF(math.NaN(), b[:])
	if v := math.Float32frombits(ToIEEESingle(b[:])); !math.IsNaN(float64(v)) {
		t.Fatalf("reserved operand bridged to %v, want NaN", v)
	}
	var g [8]byte
	EncodeG(math.NaN(), g[:])
	if v := math.Float64frombits(ToIEEEDouble(g[:])); !math.IsNaN(v) {
		t.Fatalf("G reserved operand bridged to %v, want NaN", v)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		give Outcome
		want string
	}{
		{OK, "ok"}, {Overflowed, "overflow"}, {Underflowed, "underflow"},
		{WasNaN, "nan"}, {Outcome(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}
