package proto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{
		Kind:    KindPageReply,
		ReqID:   0xdeadbeef,
		From:    3,
		Page:    17,
		SrcArch: 2,
		Args:    []uint32{1, 0xffffffff, 42},
		Data:    []byte{9, 8, 7, 6, 5},
	}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), m.EncodedSize())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.ReqID != m.ReqID || got.From != m.From ||
		got.Page != m.Page || got.SrcArch != m.SrcArch {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	if len(got.Args) != 3 || got.Args[0] != 1 || got.Args[1] != 0xffffffff || got.Args[2] != 42 {
		t.Fatalf("args %v", got.Args)
	}
	if !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("data %v", got.Data)
	}
}

func TestEncodeDecodeMinimalMessage(t *testing.T) {
	m := &Message{Kind: KindEcho}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindEcho || len(got.Args) != 0 || len(got.Data) != 0 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestTooManyArgsRejected(t *testing.T) {
	m := &Message{Kind: KindEcho, Args: make([]uint32, MaxArgs+1)}
	if _, err := m.Encode(); err == nil {
		t.Fatal("encoded message with too many args")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("decoded nil buffer")
	}
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("decoded short buffer")
	}
	m := &Message{Kind: KindEcho, Data: []byte{1, 2, 3}}
	buf, _ := m.Encode()
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Error("decoded truncated buffer")
	}
	if _, err := Decode(append(buf, 0)); err == nil {
		t.Error("decoded over-long buffer")
	}
}

func TestArgHelperReturnsZeroWhenAbsent(t *testing.T) {
	m := &Message{Args: []uint32{5}}
	if m.Arg(0) != 5 || m.Arg(1) != 0 || m.Arg(99) != 0 {
		t.Fatal("Arg helper wrong")
	}
}

func TestIsReplyClassification(t *testing.T) {
	replies := []Kind{
		KindPageReply, KindInvalidateAck, KindOwnerUpdateAck, KindThreadCreated,
		KindSemReply, KindEventReply, KindBarrierReply, KindAllocReply, KindEchoReply,
	}
	for _, k := range replies {
		if !k.IsReply() {
			t.Errorf("%v not classified as reply", k)
		}
	}
	requests := []Kind{
		KindGetPage, KindGetPageWrite, KindInvalidate, KindOwnerUpdate,
		KindThreadCreate, KindSemOp, KindEventOp, KindBarrierOp, KindAlloc, KindEcho,
	}
	for _, k := range requests {
		if k.IsReply() {
			t.Errorf("%v misclassified as reply", k)
		}
	}
}

func TestKindStringsAreUnique(t *testing.T) {
	seen := make(map[string]Kind)
	for k := KindInvalid; k <= KindEchoReply; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(kind uint8, reqID, from, page uint32, srcArch uint8, args []uint32, data []byte) bool {
		if len(args) > MaxArgs {
			args = args[:MaxArgs]
		}
		m := &Message{
			Kind: Kind(kind), ReqID: reqID, From: from, Page: page,
			SrcArch: srcArch, Args: args, Data: data,
		}
		buf, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.Kind != m.Kind || got.ReqID != m.ReqID || got.From != m.From ||
			got.Page != m.Page || got.SrcArch != m.SrcArch {
			return false
		}
		if len(got.Args) != len(m.Args) {
			return false
		}
		for i := range m.Args {
			if got.Args[i] != m.Args[i] {
				return false
			}
		}
		return bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	// The decoder faces whatever arrives off the wire; arbitrary bytes
	// must produce an error or a message, never a panic.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", buf, r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

func TestDecodeTruncationsOfValidMessage(t *testing.T) {
	m := &Message{Kind: KindPageDeliver, ReqID: 7, Args: []uint32{1, 2, 3}, Data: make([]byte, 100)}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
}
