package proto

import (
	"bytes"
	"testing"
)

func sampleMessage() *Message {
	return &Message{
		Kind:    KindPageDeliver,
		ReqID:   77,
		From:    3,
		Page:    12,
		SrcArch: 2,
		Args:    []uint32{1, 42, 9},
		Data:    []byte{10, 20, 30, 40, 50},
	}
}

// TestAppendEncodeMatchesEncode pins that the append-style encoder
// produces the same bytes as Encode, both standalone and appended after
// existing content.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	m := sampleMessage()
	plain, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	appended, err := m.AppendEncode([]byte("prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(appended[:6], []byte("prefix")) {
		t.Fatal("AppendEncode clobbered existing content")
	}
	if !bytes.Equal(appended[6:], plain) {
		t.Fatal("AppendEncode bytes differ from Encode")
	}
	// Spare capacity must be used without reallocating.
	dst := make([]byte, 0, m.EncodedSize())
	out, err := m.AppendEncode(dst)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("AppendEncode reallocated despite sufficient capacity")
	}
}

// TestDecodeBorrowAliasing pins the aliasing contracts: DecodeBorrow's
// Data aliases the wire buffer, Decode's does not.
func TestDecodeBorrowAliasing(t *testing.T) {
	enc, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	borrowed, err := DecodeBorrow(enc)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(borrowed.Data, copied.Data) {
		t.Fatal("borrow and copy decode disagree")
	}
	orig := borrowed.Data[0]
	enc[len(enc)-len(borrowed.Data)] ^= 0xff // mutate the wire bytes
	if borrowed.Data[0] == orig {
		t.Error("DecodeBorrow Data does not alias the wire buffer")
	}
	if copied.Data[0] != orig {
		t.Error("Decode Data aliases the wire buffer; must be a copy")
	}
	// Borrowed Data must not allow writes past its end into the buffer.
	if cap(borrowed.Data) != len(borrowed.Data) {
		t.Error("borrowed Data capacity extends past its length")
	}
}

// TestDecodeBorrowIntoReuse pins that a reused Message decodes cleanly:
// args land in the inline store, stale fields are cleared, and a second
// decode fully replaces the first.
func TestDecodeBorrowIntoReuse(t *testing.T) {
	first, err := sampleMessage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	second, err := (&Message{Kind: KindEcho, ReqID: 9}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := DecodeBorrowInto(&m, first); err != nil {
		t.Fatal(err)
	}
	m.SetWire(first)
	if len(m.Args) != 3 || m.Arg(1) != 42 {
		t.Fatalf("first decode args = %v", m.Args)
	}
	if w := m.TakeWire(); &w[0] != &first[0] {
		t.Fatal("TakeWire did not return the recorded buffer")
	}
	if m.TakeWire() != nil {
		t.Fatal("TakeWire did not clear the wire reference")
	}
	if err := DecodeBorrowInto(&m, second); err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindEcho || m.ReqID != 9 {
		t.Fatalf("second decode = %+v", m)
	}
	if len(m.Args) != 0 || len(m.Data) != 0 {
		t.Fatalf("stale args/data survived reuse: %v %v", m.Args, m.Data)
	}
}

// TestDecodeBorrowRejects pins validation in borrow mode: truncated
// headers, arg counts beyond the inline store, and length mismatches.
func TestDecodeBorrowRejects(t *testing.T) {
	var m Message
	if err := DecodeBorrowInto(&m, make([]byte, 10)); err == nil {
		t.Error("truncated header accepted")
	}
	enc, _ := sampleMessage().Encode()
	enc[2] = MaxArgs + 1
	if err := DecodeBorrowInto(&m, enc); err == nil {
		t.Error("oversized arg count accepted")
	}
	enc[2] = 3
	if err := DecodeBorrowInto(&m, enc[:len(enc)-1]); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestBorrowPathZeroAllocs guards the hot-path encode/decode pair.
func TestBorrowPathZeroAllocs(t *testing.T) {
	m := sampleMessage()
	dst := make([]byte, 0, m.EncodedSize())
	var rx Message
	avg := testing.AllocsPerRun(100, func() {
		out, err := m.AppendEncode(dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeBorrowInto(&rx, out); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("AppendEncode+DecodeBorrowInto allocates %.1f times per run, want 0", avg)
	}
}
