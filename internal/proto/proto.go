// Package proto defines the binary wire format of Mermaid's messages.
//
// As in the paper (§2.2), there is no general marshalling layer: page
// contents are transferred as raw, unstructured bytes (conversion is a
// higher-level, type-driven concern), and control information is a small
// fixed header plus a handful of scalar arguments. All header fields are
// network byte order (big-endian).
package proto

import (
	"encoding/binary"
	"fmt"
)

// Kind identifies a message type.
type Kind uint8

// Message kinds. Request/response pairing is by ReqID, not by kind, so
// forwarded requests can be answered by a host other than the one the
// requester contacted.
const (
	// KindInvalid is the zero Kind. It is never sent, so it is neither a
	// reply nor registered with a handler.
	KindInvalid Kind = iota // vet:ignore kind-dispatch — the zero value is never routed
	// KindGetPage requests a page copy for reading (to manager/owner).
	KindGetPage
	// KindGetPageWrite requests a page with ownership for writing.
	KindGetPageWrite
	// KindPageReply carries the page contents (and, for writes,
	// ownership) back to the requester.
	KindPageReply
	// KindServeRequest is the manager's reliable forward to the serving
	// host: "send page P to host Args[0], redeeming its request
	// Args[1]". Acked immediately with KindServeAck.
	KindServeRequest
	// KindServeAck acknowledges receipt of a serve request.
	KindServeAck
	// KindPageDeliver carries the page body (or an upgrade grant) from
	// the serving host to the requester as a reliable call of its own;
	// Args[1] names the requester's original request to redeem.
	KindPageDeliver
	// KindPageDeliverAck acknowledges a page delivery.
	KindPageDeliverAck
	// KindInvalidate tells a copyset member to discard its copy.
	KindInvalidate
	// KindInvalidateAck acknowledges an invalidation.
	KindInvalidateAck
	// KindOwnerUpdate tells the manager the new owner of a page.
	KindOwnerUpdate
	// KindOwnerUpdateAck acknowledges an owner update.
	KindOwnerUpdateAck
	// KindThreadCreate asks a host to start an application thread.
	KindThreadCreate
	// KindThreadCreated acknowledges thread creation with its ID.
	KindThreadCreated
	// KindThreadExited notifies the creator that a thread finished.
	KindThreadExited
	// KindThreadExitedAck acknowledges the exit notification.
	KindThreadExitedAck
	// KindThreadMigrate carries a thread's state to a new host (§2.2:
	// threads may be created and later moved to other hosts).
	KindThreadMigrate
	// KindThreadMigrateAck confirms the state was installed.
	KindThreadMigrateAck
	// KindSemOp performs P or V on a distributed semaphore.
	KindSemOp
	// KindSemReply grants a P or acknowledges a V.
	KindSemReply
	// KindEventOp waits for or sets a distributed event.
	KindEventOp
	// KindEventReply unblocks an event waiter or acks a set.
	KindEventReply
	// KindBarrierOp announces arrival at a distributed barrier.
	KindBarrierOp
	// KindBarrierReply releases a barrier participant.
	KindBarrierReply
	// KindAlloc asks the allocation manager for DSM memory.
	KindAlloc
	// KindAllocReply returns the allocated address.
	KindAllocReply
	// KindPageMeta distributes a page's type and allocated length to
	// every host at allocation time.
	KindPageMeta
	// KindPageMetaAck acknowledges a page-meta update.
	KindPageMetaAck
	// KindUpdateWrite asks the page's manager to sequence and
	// distribute a write under the write-update coherence policy.
	KindUpdateWrite
	// KindUpdateWriteAck tells the writer its update is applied
	// everywhere and may be applied locally.
	KindUpdateWriteAck
	// KindApplyUpdate pushes sequenced update bytes to replica holders
	// (broadcast; the target list travels in the arguments).
	KindApplyUpdate
	// KindApplyUpdateAck confirms a pushed update.
	KindApplyUpdateAck
	// KindRemoteRead fetches bytes from a page's server without caching
	// (the central-server coherence policy).
	KindRemoteRead
	// KindRemoteReadReply carries the requested bytes, already in the
	// requester's representation.
	KindRemoteReadReply
	// KindRemoteWrite stores bytes at a page's server.
	KindRemoteWrite
	// KindRemoteWriteAck confirms a remote store. Arg 0 carries the
	// previous value for atomic swaps.
	KindRemoteWriteAck
	// KindEcho and KindEchoReply support tests and calibration.
	KindEcho
	// KindEchoReply is the response to KindEcho.
	KindEchoReply
	// KindHeartbeat is the failure detector's periodic liveness
	// broadcast (one-way, never acked; silence is the signal).
	KindHeartbeat
	// KindRecoverPage asks a surviving copyset member for its copy of a
	// page whose owner crashed. Unlike KindServeRequest it tolerates the
	// target no longer holding the copy.
	KindRecoverPage
	// KindRecoverPageReply carries the survivor's copy in its native
	// format (Args[0]=1) or reports it holds none (Args[0]=0).
	KindRecoverPageReply
	// KindDynGetPage requests a page copy for reading under the dynamic
	// distributed manager, sent to the requester's probable owner. Never
	// answered directly: the eventual owner redeems the call with a
	// KindPageDeliver.
	KindDynGetPage
	// KindDynGetPageWrite requests a page with ownership for writing
	// under the dynamic distributed manager.
	KindDynGetPageWrite
	// KindDynForward hands a dynamic-manager request one hop down the
	// probable-owner chain: "requester Args[0] wants page P (write if
	// Args[2]), redeem its request Args[1]; Args[3] hops so far". Acked
	// immediately with KindDynForwardAck so a lost hop is retransmitted.
	KindDynForward
	// KindDynForwardAck acknowledges receipt of a forwarded request.
	KindDynForwardAck
	// KindDynRecover asks a recovery coordinator to locate (or rebuild
	// from surviving copies) the owner of a page whose probable-owner
	// chain broke at a crashed host. Args[0] is the hint the requester
	// chased last.
	KindDynRecover
	// KindDynRecoverReply answers with Args[0]=1 and the live owner in
	// Args[1], or Args[0]=0 for a page whose every copy died.
	KindDynRecoverReply
	// KindDynConfirm reports a served read copy installed on the
	// requester. The dynamic owner holds the page transaction open until
	// it arrives, so the next write's invalidation round cannot race the
	// installation (the dynamic counterpart of KindOwnerUpdate).
	KindDynConfirm
	// KindDynConfirmAck acknowledges a KindDynConfirm.
	KindDynConfirmAck
	// KindQuorumRead asks a replica for its current version of page
	// Page: the reply carries the replica's tag and page image. Phase 1
	// of an SC-ABD quorum read.
	KindQuorumRead
	// KindQuorumReadReply answers a KindQuorumRead with Args[0]=tag
	// timestamp, Args[1]=tag writer host, and the page bytes in the
	// replica's native representation (SrcArch set).
	KindQuorumReadReply
	// KindQuorumWrite stores a (value, tag) version at a replica:
	// Args[0]=tag timestamp, Args[1]=tag writer host, Data the page
	// image in the sender's native representation. Used both by write
	// phase 2 and by the read write-back.
	KindQuorumWrite
	// KindQuorumWriteAck acknowledges a KindQuorumWrite.
	KindQuorumWriteAck
	// KindRCDiff pushes a release-consistency interval diff to a page's
	// home: Page the page, Args[0]=writer host, Args[1]=writer's interval
	// count after the release, Data the encoded typed diff (conv.Diff
	// wire form) in the sender's native representation.
	KindRCDiff
	// KindRCDiffAck acknowledges a KindRCDiff with Args[0] = the home
	// version the diff was logged as.
	KindRCDiffAck
	// KindRCPull asks a page's home for the diff-log suffix after
	// Args[0]=version the puller has applied.
	KindRCPull
	// KindRCPullReply answers a KindRCPull: Args[0]=home version now,
	// Args[1]=number of diff entries, Args[2]=flags (rcPullWhole when
	// the log no longer reaches back and Data is the whole page image
	// instead), Data the concatenated entries or the page image.
	KindRCPullReply
	// KindRCFetch asks a page's home for a whole-page copy at its
	// current version (the RC read/write fault path).
	KindRCFetch
	// KindRCFetchReply answers a KindRCFetch with Args[0]=home version
	// and Data the page image in the home's native representation.
	KindRCFetchReply
)

// String names the message kind.
func (k Kind) String() string {
	names := [...]string{
		"invalid", "get-page", "get-page-write", "page-reply",
		"serve-request", "serve-ack", "page-deliver", "page-deliver-ack",
		"invalidate", "invalidate-ack", "owner-update", "owner-update-ack",
		"thread-create", "thread-created", "thread-exited", "thread-exited-ack",
		"thread-migrate", "thread-migrate-ack",
		"sem-op", "sem-reply", "event-op", "event-reply",
		"barrier-op", "barrier-reply", "alloc", "alloc-reply",
		"page-meta", "page-meta-ack",
		"update-write", "update-write-ack", "apply-update", "apply-update-ack",
		"remote-read", "remote-read-reply", "remote-write", "remote-write-ack",
		"echo", "echo-reply",
		"heartbeat", "recover-page", "recover-page-reply",
		"dyn-get-page", "dyn-get-page-write", "dyn-forward", "dyn-forward-ack",
		"dyn-recover", "dyn-recover-reply", "dyn-confirm", "dyn-confirm-ack",
		"quorum-read", "quorum-read-reply", "quorum-write", "quorum-write-ack",
		"rc-diff", "rc-diff-ack", "rc-pull", "rc-pull-reply",
		"rc-fetch", "rc-fetch-reply",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsReply reports whether the kind is a response that should complete a
// pending call rather than be dispatched to a handler.
func (k Kind) IsReply() bool {
	switch k {
	case KindPageReply, KindServeAck, KindPageDeliverAck, KindInvalidateAck, KindOwnerUpdateAck,
		KindThreadCreated, KindThreadExitedAck, KindThreadMigrateAck, KindSemReply, KindEventReply,
		KindBarrierReply, KindAllocReply, KindPageMetaAck,
		KindUpdateWriteAck, KindApplyUpdateAck,
		KindRemoteReadReply, KindRemoteWriteAck, KindEchoReply,
		KindRecoverPageReply, KindDynForwardAck, KindDynRecoverReply, KindDynConfirmAck,
		KindQuorumReadReply, KindQuorumWriteAck,
		KindRCDiffAck, KindRCPullReply, KindRCFetchReply:
		return true
	default:
		return false
	}
}

// MaxArgs is the maximum number of scalar arguments per message.
const MaxArgs = 15

// headerSize is the fixed encoded header length in bytes.
const headerSize = 1 + 1 + 1 + 1 + 4 + 4 + 4 + 4

// Message is one Mermaid protocol message.
type Message struct {
	// Kind is the message type.
	Kind Kind
	// ReqID correlates a response (or forwarded request) with the
	// original call. Assigned by the remote-operation layer.
	ReqID uint32
	// From is the *original* requester host; it survives forwarding so
	// the owner can reply directly (§2.2's forwarding capability).
	From uint32
	// Page is the DSM page number the message concerns (0 if unused).
	Page uint32
	// SrcArch is the arch.Kind of the host whose native format Data is
	// in (meaningful when Data is non-empty).
	SrcArch uint8
	// Args carries small scalar arguments whose meaning depends on Kind.
	Args []uint32
	// Data carries bulk payload — page contents — as raw bytes.
	Data []byte

	// argStore backs Args in borrow-mode decoding so parsing a message
	// never allocates an argument slice.
	argStore [MaxArgs]uint32
	// wire is the pooled buffer Data aliases after a borrow-mode decode.
	// The consumer that finishes with Data detaches it with TakeWire and
	// returns it to its pool.
	wire []byte
}

// SetWire records the underlying wire buffer that Data aliases, for
// later release via TakeWire. The message does not use it otherwise.
func (m *Message) SetWire(buf []byte) { m.wire = buf }

// TakeWire detaches and returns the recorded wire buffer (nil if none).
// After TakeWire the caller owns the buffer; Data must no longer be
// used if it aliased it.
func (m *Message) TakeWire() []byte {
	w := m.wire
	m.wire = nil
	return w
}

// EncodedSize returns the length of the encoded message in bytes.
func (m *Message) EncodedSize() int {
	return headerSize + 4*len(m.Args) + len(m.Data)
}

// Encode serializes the message into a fresh buffer. The transfer hot
// path uses AppendEncode with a pooled buffer instead.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(nil)
}

// AppendEncode serializes the message, appending to dst (which may be
// nil) and returning the extended slice. When dst has capacity for the
// encoded message — a pooled buffer sliced to zero length — no
// allocation occurs.
func (m *Message) AppendEncode(dst []byte) ([]byte, error) {
	if len(m.Args) > MaxArgs {
		return nil, fmt.Errorf("proto: %d args exceeds maximum %d", len(m.Args), MaxArgs)
	}
	n := m.EncodedSize()
	if cap(dst)-len(dst) < n {
		grown := make([]byte, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[len(dst) : len(dst)+n]
	dst = dst[:len(dst)+n]
	buf[0] = byte(m.Kind)
	buf[1] = m.SrcArch
	buf[2] = byte(len(m.Args))
	buf[3] = 0 // reserved
	binary.BigEndian.PutUint32(buf[4:], m.ReqID)
	binary.BigEndian.PutUint32(buf[8:], m.From)
	binary.BigEndian.PutUint32(buf[12:], m.Page)
	binary.BigEndian.PutUint32(buf[16:], uint32(len(m.Data)))
	off := headerSize
	for _, a := range m.Args {
		binary.BigEndian.PutUint32(buf[off:], a)
		off += 4
	}
	copy(buf[off:], m.Data)
	return dst, nil
}

// Decode parses an encoded message into a fresh Message with its own
// copy of Data; buf may be reused or mutated afterwards.
func Decode(buf []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeBorrowInto(m, buf); err != nil {
		return nil, err
	}
	if len(m.Data) > 0 {
		data := make([]byte, len(m.Data))
		copy(data, m.Data)
		m.Data = data
	}
	return m, nil
}

// DecodeBorrow parses an encoded message without copying the payload:
// the returned message's Data aliases buf. The caller must not recycle
// or mutate buf while the message's Data is live.
func DecodeBorrow(buf []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeBorrowInto(m, buf); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeBorrowInto parses an encoded message into m without allocating:
// Args decodes into m's inline argument store and Data aliases buf. Any
// previous contents of m, including a recorded wire buffer, are
// discarded (the wire buffer is not released — detach it with TakeWire
// before reusing m).
func DecodeBorrowInto(m *Message, buf []byte) error {
	if len(buf) < headerSize {
		return fmt.Errorf("proto: message of %d bytes shorter than header %d", len(buf), headerSize)
	}
	nargs := int(buf[2])
	if nargs > MaxArgs {
		return fmt.Errorf("proto: %d args exceeds maximum %d", nargs, MaxArgs)
	}
	dataLen := int(binary.BigEndian.Uint32(buf[16:]))
	want := headerSize + 4*nargs + dataLen
	if len(buf) != want {
		return fmt.Errorf("proto: message length %d, header implies %d", len(buf), want)
	}
	m.Kind = Kind(buf[0])
	m.SrcArch = buf[1]
	m.ReqID = binary.BigEndian.Uint32(buf[4:])
	m.From = binary.BigEndian.Uint32(buf[8:])
	m.Page = binary.BigEndian.Uint32(buf[12:])
	m.Args = nil
	m.Data = nil
	m.wire = nil
	off := headerSize
	if nargs > 0 {
		args := m.argStore[:nargs]
		for i := range args {
			args[i] = binary.BigEndian.Uint32(buf[off:])
			off += 4
		}
		m.Args = args
	}
	if dataLen > 0 {
		m.Data = buf[off : off+dataLen : off+dataLen]
	}
	return nil
}

// Arg returns Args[i], or 0 if absent — convenient for optional args.
func (m *Message) Arg(i int) uint32 {
	if i < len(m.Args) {
		return m.Args[i]
	}
	return 0
}
