package threads

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

type rig struct {
	k    *sim.Kernel
	reg  *Registry
	mgrs []*Manager
}

func newRig(t *testing.T, specs []struct {
	kind arch.Kind
	cpus int
}) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	params := model.Default()
	net := netsim.New(k, &params)
	reg := NewRegistry()
	r := &rig{k: k, reg: reg}
	for i, spec := range specs {
		ifc, err := net.Attach(netsim.HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		ep := remoteop.New(k, ifc, spec.kind, &params)
		mgr, err := New(k, ep, spec.kind, spec.cpus, &params, reg)
		if err != nil {
			t.Fatal(err)
		}
		ep.Start()
		r.mgrs = append(r.mgrs, mgr)
	}
	for _, m := range r.mgrs {
		m.SetPeers(r.mgrs)
	}
	return r
}

func twoHosts(t *testing.T) *rig {
	return newRig(t, []struct {
		kind arch.Kind
		cpus int
	}{
		{arch.Sun, 1},
		{arch.Firefly, 4},
	})
}

func TestLocalThreadCreateAndJoin(t *testing.T) {
	r := twoHosts(t)
	ran := false
	r.reg.MustRegister(1, func(th *Thread, args []uint32) {
		th.Compute(10 * time.Millisecond)
		ran = true
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		h, err := r.mgrs[0].Create(p, 0, 1, nil)
		if err != nil {
			t.Error(err)
			return
		}
		h.Join(p)
		if !ran {
			t.Error("joined before the thread ran")
		}
	})
	r.k.Run()
}

func TestRemoteThreadCreation(t *testing.T) {
	r := twoHosts(t)
	var ranOn HostID = -1
	var gotArgs []uint32
	r.reg.MustRegister(7, func(th *Thread, args []uint32) {
		ranOn = th.Host()
		gotArgs = args
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		h, err := r.mgrs[0].Create(p, 1, 7, []uint32{10, 20, 30})
		if err != nil {
			t.Error(err)
			return
		}
		h.Join(p)
	})
	r.k.Run()
	if ranOn != 1 {
		t.Fatalf("thread ran on host %d, want 1", ranOn)
	}
	if len(gotArgs) != 3 || gotArgs[0] != 10 || gotArgs[2] != 30 {
		t.Fatalf("thread args %v", gotArgs)
	}
}

func TestUnregisteredFunctionRejected(t *testing.T) {
	r := twoHosts(t)
	r.k.Spawn("main", func(p *sim.Proc) {
		if _, err := r.mgrs[0].Create(p, 0, 99, nil); err == nil {
			t.Error("created thread with unregistered function")
		}
	})
	r.k.Run()
}

func TestComputeScalesBySunFactor(t *testing.T) {
	r := twoHosts(t)
	var sunTime, ffTime sim.Duration
	r.reg.MustRegister(1, func(th *Thread, args []uint32) {
		start := th.P.Now()
		th.Compute(100 * time.Millisecond)
		if th.Kind() == arch.Sun {
			sunTime = th.P.Now().Sub(start)
		} else {
			ffTime = th.P.Now().Sub(start)
		}
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		h0, _ := r.mgrs[0].Create(p, 0, 1, nil)
		h1, _ := r.mgrs[1].Create(p, 1, 1, nil)
		h0.Join(p)
		h1.Join(p)
	})
	r.k.Run()
	if ffTime != 100*time.Millisecond {
		t.Fatalf("firefly compute %v, want 100ms", ffTime)
	}
	if sunTime != 131*time.Millisecond {
		t.Fatalf("sun compute %v, want 131ms (1.31×)", sunTime)
	}
}

func TestSingleCPUSerializesThreads(t *testing.T) {
	r := twoHosts(t)
	var ends []sim.Time
	r.reg.MustRegister(1, func(th *Thread, args []uint32) {
		th.Compute(100 * time.Millisecond)
		ends = append(ends, th.P.Now())
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		var hs []*Handle
		for i := 0; i < 3; i++ {
			h, err := r.mgrs[0].Create(p, 0, 1, nil)
			if err != nil {
				t.Error(err)
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			h.Join(p)
		}
	})
	r.k.Run()
	if len(ends) != 3 {
		t.Fatalf("%d threads finished, want 3", len(ends))
	}
	// Sun: one CPU at 1.31× cost: completions at ≈131, 262, 393 ms
	// (plus creation costs); strictly serial spacing of ≥131 ms.
	for i := 1; i < len(ends); i++ {
		if gap := ends[i].Sub(ends[i-1]); gap < 131*time.Millisecond {
			t.Fatalf("completion gap %v < one compute slot; CPU not serialized", gap)
		}
	}
}

func TestMultiprocessorRunsThreadsInParallel(t *testing.T) {
	r := twoHosts(t)
	var ends []sim.Time
	r.reg.MustRegister(1, func(th *Thread, args []uint32) {
		th.Compute(100 * time.Millisecond)
		ends = append(ends, th.P.Now())
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		var hs []*Handle
		for i := 0; i < 4; i++ {
			h, err := r.mgrs[1].Create(p, 1, 1, nil)
			if err != nil {
				t.Error(err)
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			h.Join(p)
		}
	})
	r.k.Run()
	// Four threads, four CPUs: all finish within creation stagger of
	// each other (serial execution would spread them over 400 ms).
	for i := 1; i < len(ends); i++ {
		if gap := ends[i].Sub(ends[0]); gap > 5*time.Millisecond {
			t.Fatalf("ends %v spread over %v; threads not parallel on a 4-CPU firefly", ends, gap)
		}
	}
}

func TestCPUCountValidation(t *testing.T) {
	k := sim.NewKernel(1)
	params := model.Default()
	net := netsim.New(k, &params)
	ifc, _ := net.Attach(0)
	ep := remoteop.New(k, ifc, arch.Sun, &params)
	reg := NewRegistry()
	if _, err := New(k, ep, arch.Sun, 2, &params, reg); err == nil {
		t.Error("2-CPU Sun accepted (Sun-3/60 has one CPU)")
	}
	if _, err := New(k, ep, arch.Firefly, 8, &params, reg); err == nil {
		t.Error("8-CPU Firefly accepted (maximum is 7)")
	}
	if _, err := New(k, ep, arch.Firefly, 0, &params, reg); err == nil {
		t.Error("0-CPU host accepted")
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(1, func(*Thread, []uint32) {}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(1, func(*Thread, []uint32) {}); err == nil {
		t.Fatal("duplicate function ID registered")
	}
}

func TestManyRemoteThreadsJoinAll(t *testing.T) {
	r := twoHosts(t)
	count := 0
	r.reg.MustRegister(1, func(th *Thread, args []uint32) {
		th.Compute(time.Duration(args[0]) * time.Millisecond)
		count++
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		var hs []*Handle
		for i := 0; i < 10; i++ {
			h, err := r.mgrs[0].Create(p, 1, 1, []uint32{uint32(i + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			h.Join(p)
		}
		if count != 10 {
			t.Errorf("joined with %d of 10 threads complete", count)
		}
	})
	r.k.Run()
}

func TestMigrateToMovesComputeVenue(t *testing.T) {
	r := twoHosts(t)
	var before, after sim.Duration
	r.reg.MustRegister(2, func(th *Thread, args []uint32) {
		s := th.P.Now()
		th.Compute(100 * time.Millisecond) // on the Firefly: 100ms
		before = th.P.Now().Sub(s)
		if err := th.MigrateTo(0); err != nil {
			t.Error(err)
		}
		s = th.P.Now()
		th.Compute(100 * time.Millisecond) // on the Sun: 131ms
		after = th.P.Now().Sub(s)
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		h, err := r.mgrs[1].Create(p, 1, 2, nil)
		if err != nil {
			t.Error(err)
			return
		}
		h.Join(p)
	})
	r.k.Run()
	if before != 100*time.Millisecond {
		t.Fatalf("pre-migration compute %v, want 100ms", before)
	}
	if after != 131*time.Millisecond {
		t.Fatalf("post-migration compute %v, want 131ms (Sun factor)", after)
	}
}

func TestMigrateToSameHostIsNoop(t *testing.T) {
	r := twoHosts(t)
	r.reg.MustRegister(2, func(th *Thread, args []uint32) {
		start := th.P.Now()
		if err := th.MigrateTo(th.Host()); err != nil {
			t.Error(err)
		}
		if th.P.Now() != start {
			t.Error("no-op migration consumed time")
		}
	})
	r.k.Spawn("main", func(p *sim.Proc) {
		h, _ := r.mgrs[0].Create(p, 0, 2, nil)
		h.Join(p)
	})
	r.k.Run()
}

func TestMigrateWithoutPeersFails(t *testing.T) {
	k := sim.NewKernel(1)
	params := model.Default()
	net := netsim.New(k, &params)
	ifc, _ := net.Attach(0)
	ep := remoteop.New(k, ifc, arch.Sun, &params)
	reg := NewRegistry()
	var migErr error
	reg.MustRegister(1, func(th *Thread, args []uint32) {
		migErr = th.MigrateTo(5)
	})
	m, err := New(k, ep, arch.Sun, 1, &params, reg)
	if err != nil {
		t.Fatal(err)
	}
	ep.Start()
	k.Spawn("main", func(p *sim.Proc) {
		h, _ := m.Create(p, 0, 1, nil)
		h.Join(p)
	})
	k.Run()
	if migErr == nil {
		t.Fatal("migration without peer wiring succeeded")
	}
}

func TestThreadAccessors(t *testing.T) {
	r := twoHosts(t)
	r.reg.MustRegister(3, func(th *Thread, args []uint32) {
		if th.ID().Host() != 1 {
			t.Errorf("thread ID host %d, want 1", th.ID().Host())
		}
		if th.Kind() != arch.Firefly {
			t.Errorf("kind %v", th.Kind())
		}
	})
	if r.mgrs[1].CPUs() != 4 {
		t.Fatalf("CPUs %d, want 4", r.mgrs[1].CPUs())
	}
	r.k.Spawn("main", func(p *sim.Proc) {
		h, err := r.mgrs[0].Create(p, 1, 3, nil)
		if err != nil {
			t.Error(err)
			return
		}
		h.Join(p)
	})
	r.k.Run()
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(9, func(*Thread, []uint32) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MustRegister did not panic")
		}
	}()
	reg.MustRegister(9, func(*Thread, []uint32) {})
}

func TestCreateWithTooManyArgs(t *testing.T) {
	r := twoHosts(t)
	r.reg.MustRegister(4, func(*Thread, []uint32) {})
	r.k.Spawn("main", func(p *sim.Proc) {
		if _, err := r.mgrs[0].Create(p, 1, 4, make([]uint32, 20)); err == nil {
			t.Error("20 wire args accepted")
		}
	})
	r.k.Run()
}
