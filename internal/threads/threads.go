// Package threads implements Mermaid's thread management module (§2.2):
// thread creation (local or directly on a remote host), termination
// notification and join, and CPU scheduling.
//
// On a Sun, Mermaid supplied a user-level, non-preemptive thread package
// on the single CPU; on a Firefly, Topaz system threads run across up to
// seven processors sharing physical memory. Both are modelled by a CPU
// pool per host: a thread holds a CPU while computing (Compute) and
// releases it while blocked on DSM faults or synchronization, which is
// exactly the scheduling opportunity a non-preemptive user-level package
// gets.
//
// Because threads on remote hosts cannot carry Go closures over the
// simulated wire, applications register entry points in a cluster-wide
// function Registry and pass small scalar arguments — the same contract
// the original system's remote thread creation had.
package threads

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// HostID aliases the network host identifier.
type HostID = remoteop.HostID

// FuncID names a registered thread entry point.
type FuncID uint32

// ThreadID identifies a thread cluster-wide: creator-host in the high
// bits, per-host sequence in the low bits.
type ThreadID uint32

// Host extracts the host a thread runs on.
func (t ThreadID) Host() HostID { return HostID(t >> 20) }

// Func is a thread entry point. It runs on the host's simulated time
// and must do its computation through Thread.Compute.
type Func func(t *Thread, args []uint32)

// Registry is the cluster-wide static table of thread entry points. It
// must be populated identically on every host before the cluster runs.
type Registry struct {
	fns map[FuncID]Func
}

// NewRegistry creates an empty function registry.
func NewRegistry() *Registry { return &Registry{fns: make(map[FuncID]Func)} }

// Register adds an entry point under id, failing on duplicates.
func (r *Registry) Register(id FuncID, fn Func) error {
	if _, dup := r.fns[id]; dup {
		return fmt.Errorf("threads: function %d already registered", id)
	}
	r.fns[id] = fn
	return nil
}

// MustRegister is Register, panicking on error (setup-time convenience).
func (r *Registry) MustRegister(id FuncID, fn Func) {
	if err := r.Register(id, fn); err != nil {
		panic(err)
	}
}

// Thread is the running thread's self handle.
type Thread struct {
	// P is the simulated process the thread runs on; DSM and
	// synchronization calls take it.
	P *sim.Proc

	id  ThreadID
	mgr *Manager
}

// ID returns the thread's identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Host returns the host the thread runs on.
func (t *Thread) Host() HostID { return t.mgr.id }

// Kind returns the machine kind of the thread's host.
func (t *Thread) Kind() arch.Kind { return t.mgr.kind }

// Compute charges d of Firefly-baseline CPU work: it acquires one of the
// host's CPUs, holds it for d scaled by the host's speed factor, and
// releases it. Blocking operations between Compute calls leave the CPU
// free for other threads — non-preemptive scheduling at compute-chunk
// granularity.
func (t *Thread) Compute(d sim.Duration) {
	t.mgr.cpus.Use(t.P, t.mgr.params.Scale(t.mgr.kind, d))
}

// migrateStateBytes models the size of a migrating thread's context
// (registers, stack snapshot) shipped to the destination host.
const migrateStateBytes = 2048

// MigrateTo moves the running thread to another host (§2.2: "Threads
// may be created in an application and later moved to other hosts").
// The thread's context travels as a bulk message; on return the thread
// computes on — and schedules over the CPUs of — the destination.
// Callers holding host-specific handles (DSM modules etc.) must rebind
// them; the mermaid facade's Env does this automatically.
func (t *Thread) MigrateTo(dst HostID) error {
	m := t.mgr
	if dst == m.id {
		return nil
	}
	if m.peers == nil || int(dst) >= len(m.peers) || m.peers[dst] == nil {
		return fmt.Errorf("threads: host %d unknown to host %d (peers not wired)", dst, m.id)
	}
	resp, err := m.ep.Call(t.P, dst, &proto.Message{
		Kind: proto.KindThreadMigrate,
		Args: []uint32{uint32(t.id)},
		Data: make([]byte, migrateStateBytes),
	})
	if err != nil {
		return fmt.Errorf("threads: migrating thread %d to host %d: %w", t.id, dst, err)
	}
	if resp.Arg(0) == 0 {
		return fmt.Errorf("threads: host %d refused migration", dst)
	}
	t.mgr = m.peers[dst]
	return nil
}

// Handle lets the creator await a thread's termination.
type Handle struct {
	// TID is the created thread's identifier.
	TID ThreadID

	done *sim.Event
}

// Join blocks until the thread has finished.
func (h *Handle) Join(p *sim.Proc) { h.done.Wait(p) }

// Manager is one host's thread management module.
type Manager struct {
	k        *sim.Kernel
	id       HostID
	kind     arch.Kind
	ep       *remoteop.Endpoint
	params   *model.Params
	registry *Registry
	cpus     *sim.Resource
	nextSeq  uint32
	// watched maps thread IDs (created from this host) to completion
	// events for Join.
	watched map[ThreadID]*sim.Event
	// peers indexes every host's thread manager, for migration.
	peers []*Manager
}

// SetPeers wires the cluster's thread managers together so threads can
// migrate between hosts. Index must equal HostID.
func (m *Manager) SetPeers(peers []*Manager) { m.peers = peers }

// New creates the thread manager for a host with the given CPU count and
// registers its protocol handlers.
func New(k *sim.Kernel, ep *remoteop.Endpoint, kind arch.Kind, cpus int, params *model.Params, registry *Registry) (*Manager, error) {
	a, err := arch.ByKind(kind)
	if err != nil {
		return nil, err
	}
	if cpus < 1 || cpus > a.MaxCPUs {
		return nil, fmt.Errorf("threads: host %d: %d CPUs outside 1..%d for a %v", ep.ID(), cpus, a.MaxCPUs, kind)
	}
	m := &Manager{
		k:        k,
		id:       ep.ID(),
		kind:     kind,
		ep:       ep,
		params:   params,
		registry: registry,
		cpus:     sim.NewResource(k, cpus),
		watched:  make(map[ThreadID]*sim.Event),
	}
	ep.Handle(proto.KindThreadCreate, m.handleCreate)
	ep.Handle(proto.KindThreadExited, m.handleExited)
	ep.Handle(proto.KindThreadMigrate, m.handleMigrate)
	return m, nil
}

// handleMigrate accepts an inbound thread: install its context (the
// thread's goroutine rebinds itself on the ack) and charge the local
// thread-creation cost.
func (m *Manager) handleMigrate(p *sim.Proc, req *proto.Message) {
	p.Sleep(m.params.ThreadCreate.Of(m.kind))
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindThreadMigrateAck, Args: []uint32{1}})
}

// CPUs returns the host's CPU pool size.
func (m *Manager) CPUs() int { return m.cpus.Capacity() }

// Create starts a thread running the registered function fn on the given
// host — locally or by remote creation (§2.2) — and returns a Handle for
// joining it.
func (m *Manager) Create(p *sim.Proc, host HostID, fn FuncID, args []uint32) (*Handle, error) {
	if _, ok := m.registry.fns[fn]; !ok {
		return nil, fmt.Errorf("threads: function %d not registered", fn)
	}
	if host == m.id {
		p.Sleep(m.params.ThreadCreate.Of(m.kind))
		tid := m.spawn(fn, args, m.id)
		return &Handle{TID: tid, done: m.watched[tid]}, nil
	}
	if len(args) > proto.MaxArgs-1 {
		return nil, fmt.Errorf("threads: %d args exceed the wire limit of %d", len(args), proto.MaxArgs-1)
	}
	wire := append([]uint32{uint32(fn)}, args...)
	resp, err := m.ep.Call(p, host, &proto.Message{Kind: proto.KindThreadCreate, Args: wire})
	if err != nil {
		return nil, fmt.Errorf("threads: creating on host %d: %w", host, err)
	}
	if resp.Arg(1) == 0 {
		return nil, fmt.Errorf("threads: host %d refused creation of function %d", host, fn)
	}
	tid := ThreadID(resp.Arg(0))
	done := m.watched[tid]
	if done == nil {
		// The exit notification may already have arrived (it races the
		// creation reply under retransmission); reuse its event if so.
		done = sim.NewEvent(m.k)
		m.watched[tid] = done
	}
	return &Handle{TID: tid, done: done}, nil
}

// spawn launches the thread body locally, with exit notification to the
// creator host. It returns the new thread's ID.
func (m *Manager) spawn(fn FuncID, args []uint32, creator HostID) ThreadID {
	m.nextSeq++
	tid := ThreadID(uint32(m.id)<<20 | m.nextSeq)
	body := m.registry.fns[fn]
	if creator == m.id {
		m.watched[tid] = sim.NewEvent(m.k)
	}
	m.k.Spawn(fmt.Sprintf("thread-%d.%d", m.id, m.nextSeq), func(p *sim.Proc) {
		t := &Thread{P: p, id: tid, mgr: m}
		body(t, args)
		// The thread may have migrated: notify from wherever it ended.
		end := t.mgr
		if creator == end.id {
			ev := end.watched[tid]
			if ev == nil {
				ev = sim.NewEvent(end.k)
				end.watched[tid] = ev
			}
			ev.Set()
			return
		}
		if _, err := end.ep.Call(p, creator, &proto.Message{
			Kind: proto.KindThreadExited,
			Args: []uint32{uint32(tid)},
		}); err != nil {
			panic(fmt.Sprintf("threads: notifying creator %d of thread %d exit: %v", creator, tid, err))
		}
	})
	return tid
}

// handleCreate serves a remote thread-creation request.
func (m *Manager) handleCreate(p *sim.Proc, req *proto.Message) {
	p.Sleep(m.params.ThreadCreate.Of(m.kind))
	fn := FuncID(req.Arg(0))
	if _, ok := m.registry.fns[fn]; !ok {
		m.ep.Reply(p, req, &proto.Message{Kind: proto.KindThreadCreated, Args: []uint32{0, 0}})
		return
	}
	var args []uint32
	if len(req.Args) > 1 {
		args = req.Args[1:]
	}
	tid := m.spawn(fn, args, HostID(req.From))
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindThreadCreated, Args: []uint32{uint32(tid), 1}})
}

// handleExited records a remote thread's termination and releases
// joiners.
func (m *Manager) handleExited(p *sim.Proc, req *proto.Message) {
	tid := ThreadID(req.Arg(0))
	done := m.watched[tid]
	if done == nil {
		// Exit raced ahead of the creation reply: remember it as a
		// pre-set event so a later Join returns immediately.
		done = sim.NewEvent(m.k)
		m.watched[tid] = done
	}
	done.Set()
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindThreadExitedAck, Args: []uint32{uint32(tid)}})
}
