package netsim

// Switched multi-segment topology: named segments (each its own shared
// medium with its own bandwidth/latency profile) joined by point-to-
// point inter-segment links (each with its own profile and per-direction
// cut-through queue). The paper's single 10 Mb/s bus is the one-segment
// degenerate case — a nil or one-segment Topology reproduces it
// bit-identically.
//
// Frames between segments traverse the link path hop by hop. Each hop
// reserves the link in its direction (cut-through: the reservation
// horizon advances by the frame's wire time at the link's bandwidth, so
// back-to-back frames queue deterministically without per-hop events)
// and adds the link's latency. Broadcast and multicast frames expand
// along a per-source spanning tree over the segments: each tree edge
// carries the frame once, so a copyset invalidation costs O(segments
// touched) cross-segment frames instead of O(copyset).

import (
	"fmt"

	"repro/internal/sim"
)

// SegmentSpec describes one shared-medium segment. Zero-valued fields
// inherit the cluster's model.Params (bandwidth, packet latency), so the
// common case — topology shapes traffic, the calibrated cost model
// prices it — needs no numbers here.
type SegmentSpec struct {
	// Name labels the segment in diagnostics.
	Name string
	// BandwidthBps is the segment's raw bit rate; 0 inherits the model.
	BandwidthBps int64
	// PacketLatency is the fixed delivery latency within the segment;
	// 0 inherits the model.
	PacketLatency sim.Duration
}

// LinkSpec describes one point-to-point link between two segments.
type LinkSpec struct {
	// A and B are the segment indices the link joins.
	A, B int
	// BandwidthBps is the link's bit rate; 0 inherits the model.
	BandwidthBps int64
	// Latency is the link's one-way propagation delay; 0 inherits the
	// model's packet latency.
	Latency sim.Duration
	// DropRate is the per-traversal loss probability on this link.
	DropRate float64
	// CorruptRate is the per-traversal probability that a frame's
	// payload is damaged in flight on this link (delivered, but with
	// wire bytes flipped — the receiver's checksum is what catches it).
	// Takes effect only when payload hooks are registered (see
	// SetPayloadHooks). Both rates draw from the kernel's seeded RNG
	// and only when non-zero, so an all-zero topology stays
	// bit-identical to the default bus.
	CorruptRate float64
}

// Topology is a switched multi-segment network shape. The zero value
// (and nil) is the classic single shared bus.
type Topology struct {
	// Segments lists the shared-medium segments. Empty means one
	// default segment.
	Segments []SegmentSpec
	// Links joins segments; every segment must be reachable from every
	// other through them.
	Links []LinkSpec
	// HostSegment assigns hosts to segments by host ID; hosts beyond
	// the slice (or with an empty slice) land on segment 0.
	HostSegment []int
}

// segmentOf returns the segment index a host lives on.
func (t *Topology) segmentOf(h HostID) int {
	if t == nil || int(h) >= len(t.HostSegment) || h < 0 {
		return 0
	}
	return t.HostSegment[h]
}

// segmentCount returns the number of segments (at least 1).
func (t *Topology) segmentCount() int {
	if t == nil || len(t.Segments) == 0 {
		return 1
	}
	return len(t.Segments)
}

// validate checks segment/link references.
func (t *Topology) validate() error {
	if t == nil {
		return nil
	}
	n := t.segmentCount()
	for i, l := range t.Links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return fmt.Errorf("netsim: link %d joins segments %d-%d, have %d segments", i, l.A, l.B, n)
		}
		if l.A == l.B {
			return fmt.Errorf("netsim: link %d joins segment %d to itself", i, l.A)
		}
	}
	for h, s := range t.HostSegment {
		if s < 0 || s >= n {
			return fmt.Errorf("netsim: host %d assigned to segment %d, have %d segments", h, s, n)
		}
	}
	return nil
}

// SwitchedStar builds the standard scaled topology: `segments` leaf
// segments of `hostsPerSegment` hosts each, star-linked through segment
// 0 (which doubles as the first leaf). All profiles inherit the model.
// Host h lands on segment h/hostsPerSegment.
func SwitchedStar(segments, hostsPerSegment int) *Topology {
	if segments < 1 {
		segments = 1
	}
	t := &Topology{
		Segments:    make([]SegmentSpec, segments),
		HostSegment: make([]int, segments*hostsPerSegment),
	}
	for i := range t.Segments {
		t.Segments[i].Name = fmt.Sprintf("seg%d", i)
	}
	for i := 1; i < segments; i++ {
		t.Links = append(t.Links, LinkSpec{A: 0, B: i})
	}
	for h := range t.HostSegment {
		t.HostSegment[h] = h / hostsPerSegment
	}
	return t
}

// segment is the runtime form of a SegmentSpec: resolved profile, its
// own contention resource, and the attached hosts in ID order (the
// deterministic broadcast expansion order).
type segment struct {
	name    string
	medium  *sim.Resource
	members []HostID
	bps     int64
	lat     sim.Duration
}

// netlink is the runtime form of a LinkSpec. busy holds the per-
// direction cut-through reservation horizon: the virtual time the link
// is next free in that direction. Reserving at send time — instead of
// scheduling per-hop events — keeps cross-segment forwarding
// allocation-free and deterministic.
type netlink struct {
	a, b    int
	bps     int64
	lat     sim.Duration
	drop    float64
	corrupt float64
	busy    [2]sim.Time // [0]: a→b, [1]: b→a
}

// treeEdge is one edge of a precomputed broadcast spanning tree, in BFS
// order from the source segment (parents always precede children).
type treeEdge struct {
	link          int16
	parent, child int16
}

// freeze resolves the topology into runtime tables: per-segment member
// lists, next-hop routes, and per-source broadcast spanning trees. It
// runs once, at the first transmission; later Attach calls only extend
// the member lists.
func (n *Network) freeze() {
	if n.frozen {
		return
	}
	n.frozen = true
	if err := n.topo.validate(); err != nil {
		panic(err)
	}
	nseg := n.topo.segmentCount()
	n.segs = make([]*segment, nseg)
	for i := range n.segs {
		s := &segment{
			name:   fmt.Sprintf("seg%d", i),
			medium: sim.NewResource(n.k, 1),
			bps:    n.params.BandwidthBps,
			lat:    n.params.PacketLatency,
		}
		if n.topo != nil && i < len(n.topo.Segments) {
			spec := n.topo.Segments[i]
			if spec.Name != "" {
				s.name = spec.Name
			}
			if spec.BandwidthBps != 0 {
				s.bps = spec.BandwidthBps
			}
			if spec.PacketLatency != 0 {
				s.lat = spec.PacketLatency
			}
		}
		n.segs[i] = s
	}
	// The degenerate bus reuses the original cable resource so traffic
	// that started before freeze (none today, but cheap to keep exact)
	// contends against the same semaphore.
	if nseg == 1 && n.cable != nil {
		n.segs[0].medium = n.cable
	}
	if n.topo != nil {
		n.links = make([]*netlink, len(n.topo.Links))
		for i, spec := range n.topo.Links {
			l := &netlink{a: spec.A, b: spec.B, bps: n.params.BandwidthBps, lat: n.params.PacketLatency, drop: spec.DropRate, corrupt: spec.CorruptRate}
			if spec.BandwidthBps != 0 {
				l.bps = spec.BandwidthBps
			}
			if spec.Latency != 0 {
				l.lat = spec.Latency
			}
			n.links[i] = l
		}
	}
	// Host → segment assignment and per-segment members, in host order.
	n.hostSeg = make([]int16, len(n.ifaces))
	for id, ifc := range n.ifaces {
		if ifc == nil {
			continue
		}
		s := n.topo.segmentOf(HostID(id))
		n.hostSeg[id] = int16(s)
		n.segs[s].members = append(n.segs[s].members, HostID(id))
	}
	if nseg == 1 {
		return
	}
	// BFS from every segment: next-hop link table for unicast routing
	// and the spanning tree (in BFS edge order) for broadcast expansion.
	adj := make([][]int16, nseg) // segment → incident link indices
	for li, l := range n.links {
		adj[l.a] = append(adj[l.a], int16(li))
		adj[l.b] = append(adj[l.b], int16(li))
	}
	n.nextLink = make([][]int16, nseg)
	n.btree = make([][]treeEdge, nseg)
	n.segArrival = make([]sim.Time, nseg)
	n.segPayload = make([]any, nseg)
	for src := 0; src < nseg; src++ {
		next := make([]int16, nseg)
		for i := range next {
			next[i] = -1
		}
		var tree []treeEdge
		// firstHop[s] is the link leaving src toward s.
		firstHop := make([]int16, nseg)
		for i := range firstHop {
			firstHop[i] = -1
		}
		queue := []int16{int16(src)}
		seen := make([]bool, nseg)
		seen[src] = true
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, li := range adj[s] {
				l := n.links[li]
				o := int16(l.b)
				if int(s) == l.b {
					o = int16(l.a)
				}
				if seen[o] {
					continue
				}
				seen[o] = true
				if int(s) == src {
					firstHop[o] = li
				} else {
					firstHop[o] = firstHop[s]
				}
				next[o] = firstHop[o]
				tree = append(tree, treeEdge{link: li, parent: s, child: o})
				queue = append(queue, o)
			}
		}
		for s := 0; s < nseg; s++ {
			if s != src && !seen[s] {
				panic(fmt.Sprintf("netsim: segment %d unreachable from segment %d", s, src))
			}
		}
		n.nextLink[src] = next
		n.btree[src] = tree
	}
}

// segOf returns the (frozen) segment index of an attached host.
func (n *Network) segOf(h HostID) int { return int(n.hostSeg[h]) }

// wireTime prices a frame's occupancy of a medium with bit rate bps,
// including the model's per-packet header overhead. For the default
// rate it is exactly model.Params.WireTime.
func (n *Network) wireTime(payloadBytes int, bps int64) sim.Duration {
	bits := int64(payloadBytes+n.params.HeaderBytes) * 8
	return sim.Duration(bits * int64(sim.Duration(1e9)) / bps)
}

// routeDelay walks the link path from segment src to dst at send time,
// reserving each link cut-through style, and returns the extra delay
// (beyond the destination segment's own latency) the frame incurs. ok
// is false if the frame was lost to a link cut or per-link drop along
// the way; a link's corruption profile may damage the payload in place.
func (n *Network) routeDelay(src, dst int, f *Frame) (delay sim.Duration, ok bool) {
	now := n.k.Now()
	arrival := now
	s := src
	for s != dst {
		li := n.nextLink[s][dst]
		l := n.links[li]
		if n.linkCutNow(l) {
			n.stats.FramesCut++
			return 0, false
		}
		if l.drop > 0 && n.k.Rand().Float64() < l.drop {
			n.stats.FramesDropped++
			return 0, false
		}
		if l.corrupt > 0 && n.corruptFn != nil && n.k.Rand().Float64() < l.corrupt {
			f.Payload = n.corruptFn(f.Payload, n.k.Rand())
			n.stats.FramesCorrupted++
		}
		dir := 0
		next := l.b
		if s == l.b {
			dir = 1
			next = l.a
		}
		start := l.busy[dir]
		if arrival > start {
			start = arrival
		}
		end := start.Add(n.wireTime(f.Size, l.bps))
		l.busy[dir] = end
		arrival = end.Add(l.lat)
		n.stats.CrossSegmentFrames++
		s = next
	}
	return arrival.Sub(now), true
}

// broadcastTree expands a broadcast frame along the source segment's
// spanning tree: each reachable tree edge carries the frame once, then
// every segment delivers to its members at its arrival time plus the
// segment latency. A cut or dropped edge silences the whole subtree
// below it, exactly like a real switch losing its uplink; a corrupting
// edge damages the copy the whole subtree below it receives, while
// segments above the edge still see the pristine payload.
func (n *Network) broadcastTree(src int, f Frame) {
	now := n.k.Now()
	arr := n.segArrival
	pay := n.segPayload
	for i := range arr {
		arr[i] = -1
		pay[i] = nil
	}
	arr[src] = now
	pay[src] = f.Payload
	for _, e := range n.btree[src] {
		if arr[e.parent] < 0 {
			continue // upstream edge already lost the frame
		}
		l := n.links[e.link]
		if n.linkCutNow(l) {
			n.stats.FramesCut++
			continue
		}
		if l.drop > 0 && n.k.Rand().Float64() < l.drop {
			n.stats.FramesDropped++
			continue
		}
		pay[e.child] = pay[e.parent]
		if l.corrupt > 0 && n.corruptFn != nil && n.k.Rand().Float64() < l.corrupt {
			pay[e.child] = n.corruptFn(pay[e.parent], n.k.Rand())
			n.stats.FramesCorrupted++
		}
		dir := 0
		if int(e.parent) == l.b {
			dir = 1
		}
		start := l.busy[dir]
		if arr[e.parent] > start {
			start = arr[e.parent]
		}
		end := start.Add(n.wireTime(f.Size, l.bps))
		l.busy[dir] = end
		arr[e.child] = end.Add(l.lat)
		n.stats.CrossSegmentFrames++
	}
	for si, seg := range n.segs {
		if arr[si] < 0 {
			continue
		}
		f.Payload = pay[si]
		n.deliverSegment(seg, f, arr[si].Sub(now)+seg.lat)
		pay[si] = nil
	}
}
