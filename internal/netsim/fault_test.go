package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// sendAt spawns a sender that transmits one small frame at each of the
// given virtual times.
func sendAt(t *testing.T, k *sim.Kernel, ifc *Interface, to HostID, times ...sim.Duration) {
	t.Helper()
	k.Spawn("tx", func(p *sim.Proc) {
		prev := sim.Duration(0)
		for _, at := range times {
			p.Sleep(at - prev)
			prev = at
			if err := ifc.Send(p, Frame{From: ifc.ID(), To: to, Size: 64, Payload: "x"}); err != nil {
				t.Error(err)
			}
		}
	})
}

// drain counts frames arriving at an interface until the run ends.
func drain(k *sim.Kernel, ifc *Interface, n *int) {
	k.Spawn("rx", func(p *sim.Proc) {
		for {
			ifc.Recv(p)
			*n++
		}
	})
}

func TestPartitionCutAndHealSymmetry(t *testing.T) {
	// While the partition window is open, frames crossing the cut are
	// lost in BOTH directions; after it closes, both directions work
	// again. The cut is checked at delivery scheduling, so the fault is
	// symmetric by construction — this test pins that down.
	k := sim.NewKernel(3)
	n, ifcs := newNet(t, k, 2)
	cut := Window{From: sim.Time(10 * time.Millisecond), Until: sim.Time(20 * time.Millisecond)}
	n.SetFaultPlan(&FaultPlan{Partitions: []Partition{{Window: cut, Group: []HostID{1}}}})

	var got0, got1 int
	drain(k, ifcs[0], &got0)
	drain(k, ifcs[1], &got1)
	// One frame each way before, during, and after the window.
	for _, dir := range []struct {
		from *Interface
		to   HostID
	}{{ifcs[0], 1}, {ifcs[1], 0}} {
		sendAt(t, k, dir.from, dir.to,
			5*time.Millisecond, 15*time.Millisecond, 25*time.Millisecond)
	}
	k.RunFor(100 * time.Millisecond)

	if got0 != 2 || got1 != 2 {
		t.Fatalf("host0 got %d, host1 got %d frames; want 2 each (cut must be symmetric and heal)", got0, got1)
	}
	if n.Stats().FramesCut != 2 {
		t.Fatalf("FramesCut = %d, want 2", n.Stats().FramesCut)
	}
}

func TestPartitionAllowsTrafficWithinSides(t *testing.T) {
	k := sim.NewKernel(3)
	n, ifcs := newNet(t, k, 4)
	n.SetFaultPlan(&FaultPlan{Partitions: []Partition{{
		Window: Window{From: 0}, // open forever
		Group:  []HostID{2, 3},
	}}})
	var in01, in23, across int
	drain(k, ifcs[1], &in01)
	drain(k, ifcs[3], &in23)
	drain(k, ifcs[0], &across)
	sendAt(t, k, ifcs[0], 1, 1*time.Millisecond) // same side
	sendAt(t, k, ifcs[2], 3, 1*time.Millisecond) // same side
	sendAt(t, k, ifcs[2], 0, 2*time.Millisecond) // crosses the cut
	k.RunFor(50 * time.Millisecond)
	if in01 != 1 || in23 != 1 {
		t.Fatalf("same-side traffic blocked: got %d and %d, want 1 and 1", in01, in23)
	}
	if across != 0 {
		t.Fatal("frame crossed an open partition")
	}
}

func TestPartitionSplitsBroadcast(t *testing.T) {
	// A broadcast from inside a partitioned group reaches only that
	// group: each receiver's delivery is cut independently.
	k := sim.NewKernel(3)
	_, ifcs := newNet(t, k, 3)
	ifcs[0].Network().SetFaultPlan(&FaultPlan{Partitions: []Partition{{
		Window: Window{From: 0},
		Group:  []HostID{0, 1},
	}}})
	var got1, got2 int
	drain(k, ifcs[1], &got1)
	drain(k, ifcs[2], &got2)
	sendAt(t, k, ifcs[0], Broadcast, 1*time.Millisecond)
	k.RunFor(50 * time.Millisecond)
	if got1 != 1 {
		t.Fatalf("same-side broadcast receiver got %d frames, want 1", got1)
	}
	if got2 != 0 {
		t.Fatal("broadcast crossed an open partition")
	}
}

func TestBurstLossWindow(t *testing.T) {
	k := sim.NewKernel(5)
	n, ifcs := newNet(t, k, 2)
	n.SetFaultPlan(&FaultPlan{Loss: []Burst{{
		Window: Window{From: sim.Time(10 * time.Millisecond), Until: sim.Time(20 * time.Millisecond)},
		Rate:   1.0,
	}}})
	var got int
	drain(k, ifcs[1], &got)
	sendAt(t, k, ifcs[0], 1, 5*time.Millisecond, 15*time.Millisecond, 25*time.Millisecond)
	k.RunFor(100 * time.Millisecond)
	if got != 2 {
		t.Fatalf("got %d frames, want 2 (only the in-window frame lost)", got)
	}
	s := n.Stats()
	if s.FramesBurstLost != 1 || s.FramesDropped != 1 {
		t.Fatalf("burst-lost %d / dropped %d, want 1 / 1", s.FramesBurstLost, s.FramesDropped)
	}
}

func TestDuplicateWindowDeliversTwice(t *testing.T) {
	k := sim.NewKernel(5)
	n, ifcs := newNet(t, k, 2)
	n.SetPayloadHooks(
		func(payload any) any { return payload }, // strings are value-safe
		func(payload any, _ *rand.Rand) any { return payload },
	)
	n.SetFaultPlan(&FaultPlan{Duplicate: []Burst{{Window: Window{From: 0}, Rate: 1.0}}})
	var got int
	drain(k, ifcs[1], &got)
	sendAt(t, k, ifcs[0], 1, 1*time.Millisecond)
	k.RunFor(50 * time.Millisecond)
	if got != 2 {
		t.Fatalf("got %d deliveries of a duplicated frame, want 2", got)
	}
	if n.Stats().FramesDuplicated != 1 {
		t.Fatalf("FramesDuplicated = %d, want 1", n.Stats().FramesDuplicated)
	}
}

func TestDownHostSendsAndReceivesNothing(t *testing.T) {
	k := sim.NewKernel(5)
	n, ifcs := newNet(t, k, 2)
	var got0, got1 int
	drain(k, ifcs[0], &got0)
	drain(k, ifcs[1], &got1)
	n.SetHostDown(1, true)
	sendAt(t, k, ifcs[0], 1, 1*time.Millisecond) // into the void
	sendAt(t, k, ifcs[1], 0, 2*time.Millisecond) // NIC down: never sent
	k.RunFor(50 * time.Millisecond)
	if got1 != 0 {
		t.Fatal("down host received a frame")
	}
	if got0 != 0 {
		t.Fatal("down host transmitted a frame")
	}
	if n.Stats().FramesToDead != 1 {
		t.Fatalf("FramesToDead = %d, want 1", n.Stats().FramesToDead)
	}
	if !n.HostDown(1) || n.HostDown(0) {
		t.Fatal("HostDown bookkeeping wrong")
	}
}

func TestCrashMidFlightFrameVanishes(t *testing.T) {
	// A frame already on the wire when its destination dies must vanish
	// at delivery time (the NIC is off), not arrive posthumously.
	k := sim.NewKernel(5)
	n, ifcs := newNet(t, k, 2)
	var got int
	drain(k, ifcs[1], &got)
	sendAt(t, k, ifcs[0], 1, 0)
	// Frame takes ~102 µs wire time + 50 µs latency; crash in between.
	k.Spawn("crash", func(p *sim.Proc) {
		p.Sleep(110 * time.Microsecond)
		n.SetHostDown(1, true)
	})
	k.RunFor(10 * time.Millisecond)
	if got != 0 {
		t.Fatal("frame was delivered to a host that died while it was in flight")
	}
	if n.Stats().FramesToDead != 1 {
		t.Fatalf("FramesToDead = %d, want 1", n.Stats().FramesToDead)
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	// The same seed and plan must lose exactly the same frames.
	run := func() (sent, dropped, got int) {
		k := sim.NewKernel(42)
		n, ifcs := newNet(t, k, 2)
		n.SetFaultPlan(&FaultPlan{Loss: []Burst{{Window: Window{From: 0}, Rate: 0.5}}})
		drain(k, ifcs[1], &got)
		times := make([]sim.Duration, 40)
		for i := range times {
			times[i] = sim.Duration(i+1) * time.Millisecond
		}
		sendAt(t, k, ifcs[0], 1, times...)
		k.RunFor(time.Second)
		s := n.Stats()
		return s.FramesSent, s.FramesDropped, got
	}
	s1, d1, g1 := run()
	s2, d2, g2 := run()
	if s1 != s2 || d1 != d2 || g1 != g2 {
		t.Fatalf("fault plan not deterministic: (%d,%d,%d) vs (%d,%d,%d)", s1, d1, g1, s2, d2, g2)
	}
	if d1 == 0 || g1 == 0 {
		t.Fatalf("degenerate run: dropped %d, delivered %d", d1, g1)
	}
}

func TestEmptyPlanReported(t *testing.T) {
	var nilPlan *FaultPlan
	if !nilPlan.Empty() {
		t.Fatal("nil plan not Empty")
	}
	if !(&FaultPlan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
	if (&FaultPlan{Crashes: []CrashEvent{{Host: 1}}}).Empty() {
		t.Fatal("plan with a crash reported Empty")
	}
}
