package netsim

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func newTopoNet(t *testing.T, k *sim.Kernel, topo *Topology, hosts int) (*Network, []*Interface) {
	t.Helper()
	p := model.Default()
	n := NewWithTopology(k, &p, topo)
	ifcs := make([]*Interface, hosts)
	for i := range ifcs {
		ifc, err := n.Attach(HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		ifcs[i] = ifc
	}
	return n, ifcs
}

// TestLinkProfileHonored pins the cross-segment arithmetic: source
// segment wire time at the segment's rate, then the link's own wire
// time and latency, then the destination segment's latency.
func TestLinkProfileHonored(t *testing.T) {
	topo := &Topology{
		Segments:    []SegmentSpec{{Name: "left"}, {Name: "right"}},
		Links:       []LinkSpec{{A: 0, B: 1, BandwidthBps: 100e6, Latency: 200 * time.Microsecond}},
		HostSegment: []int{0, 1},
	}
	k := sim.NewKernel(1)
	_, ifcs := newTopoNet(t, k, topo, 2)
	var at sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		ifcs[1].Recv(p)
		at = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 1000}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	// Segment wire time for 1000+64 bytes at the model's 10 Mb/s is
	// 851.2 µs; the link adds 85.12 µs wire time at 100 Mb/s plus its
	// 200 µs latency; the destination segment adds its 50 µs latency.
	want := sim.Time(851200 + 85120 + 200000 + 50000)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

// TestLinkCutThroughQueue pins the per-direction link reservation: two
// back-to-back frames over a slow link queue behind each other even
// though the source segment finished transmitting them long before.
func TestLinkCutThroughQueue(t *testing.T) {
	topo := &Topology{
		Segments:    []SegmentSpec{{}, {}},
		Links:       []LinkSpec{{A: 0, B: 1, BandwidthBps: 1e6}},
		HostSegment: []int{0, 1},
	}
	k := sim.NewKernel(1)
	_, ifcs := newTopoNet(t, k, topo, 2)
	var at [2]sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		for i := range at {
			ifcs[1].Recv(p)
			at[i] = p.Now()
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 1000}); err != nil {
				t.Error(err)
			}
		}
	})
	k.Run()
	// Frame 1 leaves the segment at 851.2 µs, holds the 1 Mb/s link
	// for 8512 µs (until 9363.2 µs), then link + segment latency.
	// Frame 2 leaves the segment at 1702.4 µs but must queue behind
	// frame 1's link reservation, starting at 9363.2 µs.
	want := [2]sim.Time{
		sim.Time(851200 + 8512000 + 50000 + 50000),
		sim.Time(851200 + 8512000 + 8512000 + 50000 + 50000),
	}
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

// TestLinkCutPartitionsSegments scripts a LinkCut: cross-segment
// frames die at the severed link (counted as cut), same-segment
// traffic is untouched.
func TestLinkCutPartitionsSegments(t *testing.T) {
	topo := &Topology{
		Segments:    []SegmentSpec{{}, {}},
		Links:       []LinkSpec{{A: 0, B: 1}},
		HostSegment: []int{0, 0, 1},
	}
	k := sim.NewKernel(1)
	n, ifcs := newTopoNet(t, k, topo, 3)
	n.SetFaultPlan(&FaultPlan{LinkCuts: []LinkCut{{A: 0, B: 1}}}) // Until 0: cut forever
	gotLocal := false
	k.Spawn("rx-local", func(p *sim.Proc) {
		ifcs[1].Recv(p)
		gotLocal = true
	})
	k.Spawn("rx-remote", func(p *sim.Proc) {
		if _, ok := ifcs[2].RecvTimeout(p, sim.Duration(time.Second)); ok {
			t.Error("frame crossed a severed link")
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: 2, Size: 100}); err != nil {
			t.Error(err)
		}
		if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 100}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if !gotLocal {
		t.Fatal("same-segment frame lost to a link cut")
	}
	st := n.Stats()
	if st.FramesCut != 1 {
		t.Fatalf("FramesCut = %d, want 1", st.FramesCut)
	}
	if st.CrossSegmentFrames != 0 {
		t.Fatalf("CrossSegmentFrames = %d, want 0 (the frame died at the cut)", st.CrossSegmentFrames)
	}
}

// broadcastFingerprint runs one broadcast on a 4×4 switched star and
// returns the delivery timeline (receiver, virtual time) in arrival
// order, plus the cross-segment frame count.
func broadcastFingerprint(t *testing.T) (string, int) {
	t.Helper()
	const hosts = 16
	k := sim.NewKernel(1)
	n, ifcs := newTopoNet(t, k, SwitchedStar(4, 4), hosts)
	var timeline string
	for h := 1; h < hosts; h++ {
		h := h
		k.Spawn("rx", func(p *sim.Proc) {
			ifcs[h].Recv(p)
			timeline += fmt.Sprintf("h%d@%d;", h, p.Now())
		})
	}
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 500}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	return timeline, n.Stats().CrossSegmentFrames
}

// TestBroadcastTreeDeterministic runs the same multicast expansion
// twice and demands identical delivery timelines, and pins the tree
// property: one broadcast crosses each of the star's 3 inter-segment
// links exactly once — O(segments), not O(receivers).
func TestBroadcastTreeDeterministic(t *testing.T) {
	tl1, cross1 := broadcastFingerprint(t)
	tl2, cross2 := broadcastFingerprint(t)
	if tl1 != tl2 {
		t.Fatalf("broadcast timelines differ between runs:\n  %s\n  %s", tl1, tl2)
	}
	if cross1 != 3 || cross2 != 3 {
		t.Fatalf("cross-segment frames = %d/%d, want 3 (one per tree edge)", cross1, cross2)
	}
	if tl1 == "" {
		t.Fatal("no deliveries recorded")
	}
}

// runBusTimeline drives a mixed unicast/broadcast pattern and returns
// the delivery timeline. The same pattern on a nil topology and on an
// explicit one-segment topology must match event for event — the
// degenerate case is the seed's bus, bit for bit.
func runBusTimeline(t *testing.T, topo *Topology) string {
	t.Helper()
	const hosts = 3
	k := sim.NewKernel(7)
	_, ifcs := newTopoNet(t, k, topo, hosts)
	var timeline string
	for h := 0; h < hosts; h++ {
		h := h
		k.Spawn("rx", func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				f := ifcs[h].Recv(p)
				timeline += fmt.Sprintf("h%d<-h%d@%d;", h, f.From, p.Now())
			}
		})
	}
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 300}); err != nil {
			t.Error(err)
		}
		p.Sleep(100 * time.Microsecond)
		if err := ifcs[1].Send(p, Frame{From: 1, To: 2, Size: 800}); err != nil {
			t.Error(err)
		}
		if err := ifcs[2].Send(p, Frame{From: 2, To: 0, Size: 40}); err != nil {
			t.Error(err)
		}
		if err := ifcs[1].Send(p, Frame{From: 1, To: 0, Size: 40}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	return timeline
}

// TestOneSegmentMatchesBus pins the degenerate case: an explicit
// one-segment topology produces the exact delivery timeline of the
// default shared bus.
func TestOneSegmentMatchesBus(t *testing.T) {
	bus := runBusTimeline(t, nil)
	one := runBusTimeline(t, &Topology{Segments: []SegmentSpec{{Name: "only"}}})
	if bus == "" {
		t.Fatal("no deliveries recorded")
	}
	if one != bus {
		t.Fatalf("one-segment topology diverged from the bus:\n  bus: %s\n  one: %s", bus, one)
	}
}

// TestDeliverySteadyStateNoAllocs is the alloc guard for the delivery
// hot path: after a warm-up that grows every pool (event freelist,
// delivery records, queue buffers, waiter slices), broadcasting to
// 1023 receivers on the switched 1024-host topology must allocate
// nothing at all.
func TestDeliverySteadyStateNoAllocs(t *testing.T) {
	const hosts = 1024
	const warmup, measured = 16, 64
	params := model.Default()
	k := sim.NewKernel(1)
	n := NewWithTopology(k, &params, SwitchedStar(32, 32))
	ifcs := make([]*Interface, hosts)
	for h := 0; h < hosts; h++ {
		ifc, err := n.Attach(HostID(h))
		if err != nil {
			t.Fatal(err)
		}
		ifcs[h] = ifc
	}
	for h := 1; h < hosts; h++ {
		ifc := ifcs[h]
		k.Spawn("rx", func(p *sim.Proc) {
			for f := 0; f < warmup+measured; f++ {
				ifc.Recv(p)
			}
		})
	}
	var before, after runtime.MemStats
	k.Spawn("tx", func(p *sim.Proc) {
		send := func(count int) {
			for f := 0; f < count; f++ {
				if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 64}); err != nil {
					panic(err)
				}
			}
		}
		send(warmup)
		// GC off during the window so collector bookkeeping cannot be
		// mistaken for delivery-path allocation.
		prev := debug.SetGCPercent(-1)
		runtime.ReadMemStats(&before)
		send(measured)
		runtime.ReadMemStats(&after)
		debug.SetGCPercent(prev)
	})
	k.Run()
	k.Shutdown()
	if d := after.Mallocs - before.Mallocs; d != 0 {
		t.Fatalf("steady-state delivery allocated: %d allocations over %d broadcast frames (%d deliveries)",
			d, measured, measured*(hosts-1))
	}
}

// BenchmarkSteadyStateBroadcast is the benchmark twin of the alloc
// guard: one long-lived 1024-host network, allocs/op and frame rate
// measured over the steady state only (setup and warm-up excluded).
func BenchmarkSteadyStateBroadcast(b *testing.B) {
	const hosts = 1024
	const warmup = 16
	params := model.Default()
	k := sim.NewKernel(1)
	n := NewWithTopology(k, &params, SwitchedStar(32, 32))
	ifcs := make([]*Interface, hosts)
	for h := 0; h < hosts; h++ {
		ifc, err := n.Attach(HostID(h))
		if err != nil {
			b.Fatal(err)
		}
		ifcs[h] = ifc
	}
	for h := 1; h < hosts; h++ {
		ifc := ifcs[h]
		k.Spawn("rx", func(p *sim.Proc) {
			for f := 0; f < warmup+b.N; f++ {
				ifc.Recv(p)
			}
		})
	}
	k.Spawn("tx", func(p *sim.Proc) {
		for f := 0; f < warmup; f++ {
			if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 64}); err != nil {
				panic(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for f := 0; f < b.N; f++ {
			if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 64}); err != nil {
				panic(err)
			}
		}
		b.StopTimer()
	})
	k.Run()
	k.Shutdown()
	b.ReportMetric(float64((hosts-1)*b.N)/b.Elapsed().Seconds(), "frames/s")
}

// stringHooks installs payload hooks for plain string payloads: clone
// is the identity (strings are immutable) and corrupt stamps the copy
// so a test can tell a damaged delivery from a pristine one.
func stringHooks(n *Network) {
	n.SetPayloadHooks(
		func(payload any) any { return payload },
		func(payload any, _ *rand.Rand) any { return "corrupt:" + payload.(string) },
	)
}

// TestPerLinkDropProfile pins the per-link loss profile: a DropRate=1
// link eats every frame that traverses it (counted as dropped, not
// cut), while same-segment traffic never touches the link and arrives
// untouched.
func TestPerLinkDropProfile(t *testing.T) {
	topo := &Topology{
		Segments:    []SegmentSpec{{}, {}},
		Links:       []LinkSpec{{A: 0, B: 1, DropRate: 1}},
		HostSegment: []int{0, 0, 1},
	}
	k := sim.NewKernel(1)
	n, ifcs := newTopoNet(t, k, topo, 3)
	gotLocal := false
	k.Spawn("rx-local", func(p *sim.Proc) {
		ifcs[1].Recv(p)
		gotLocal = true
	})
	k.Spawn("rx-remote", func(p *sim.Proc) {
		if _, ok := ifcs[2].RecvTimeout(p, sim.Duration(time.Second)); ok {
			t.Error("frame survived a DropRate=1 link")
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: 2, Size: 100}); err != nil {
			t.Error(err)
		}
		if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 100}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if !gotLocal {
		t.Fatal("same-segment frame lost to a per-link drop profile")
	}
	st := n.Stats()
	if st.FramesDropped != 1 {
		t.Fatalf("FramesDropped = %d, want 1", st.FramesDropped)
	}
	if st.FramesCut != 0 {
		t.Fatalf("FramesCut = %d, want 0 (profile loss is not a cut)", st.FramesCut)
	}
}

// TestPerLinkCorruptProfile pins the per-link corruption profile: a
// CorruptRate=1 link damages every traversing payload via the
// registered corrupt hook (and counts it), while the same-segment copy
// of the traffic stays pristine.
func TestPerLinkCorruptProfile(t *testing.T) {
	topo := &Topology{
		Segments:    []SegmentSpec{{}, {}},
		Links:       []LinkSpec{{A: 0, B: 1, CorruptRate: 1}},
		HostSegment: []int{0, 0, 1},
	}
	k := sim.NewKernel(1)
	n, ifcs := newTopoNet(t, k, topo, 3)
	stringHooks(n)
	var local, remote string
	k.Spawn("rx-local", func(p *sim.Proc) {
		local = ifcs[1].Recv(p).Payload.(string)
	})
	k.Spawn("rx-remote", func(p *sim.Proc) {
		remote = ifcs[2].Recv(p).Payload.(string)
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: 2, Size: 100, Payload: "pkt"}); err != nil {
			t.Error(err)
		}
		if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 100, Payload: "pkt"}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if remote != "corrupt:pkt" {
		t.Fatalf("cross-link payload = %q, want corrupted copy", remote)
	}
	if local != "pkt" {
		t.Fatalf("same-segment payload = %q, want pristine", local)
	}
	if st := n.Stats(); st.FramesCorrupted != 1 {
		t.Fatalf("FramesCorrupted = %d, want 1", st.FramesCorrupted)
	}
}

// TestBroadcastSubtreeCorruption pins the tree semantics of a lossy
// edge: on a three-segment chain whose far link corrupts everything, a
// broadcast reaches the first two segments pristine and the subtree
// below the bad edge sees only the damaged copy.
func TestBroadcastSubtreeCorruption(t *testing.T) {
	topo := &Topology{
		Segments: []SegmentSpec{{}, {}, {}},
		Links: []LinkSpec{
			{A: 0, B: 1},
			{A: 1, B: 2, CorruptRate: 1},
		},
		HostSegment: []int{0, 1, 2},
	}
	k := sim.NewKernel(1)
	n, ifcs := newTopoNet(t, k, topo, 3)
	stringHooks(n)
	var got [3]string
	got[0] = "pkt" // the sender keeps its own copy by construction
	for h := 1; h < 3; h++ {
		h := h
		k.Spawn("rx", func(p *sim.Proc) {
			got[h] = ifcs[h].Recv(p).Payload.(string)
		})
	}
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 100, Payload: "pkt"}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if got[1] != "pkt" {
		t.Fatalf("segment above the bad edge got %q, want pristine", got[1])
	}
	if got[2] != "corrupt:pkt" {
		t.Fatalf("subtree below the bad edge got %q, want corrupted copy", got[2])
	}
	if st := n.Stats(); st.FramesCorrupted != 1 {
		t.Fatalf("FramesCorrupted = %d, want 1", st.FramesCorrupted)
	}
}

// lossyTimeline drives a burst of cross-link unicasts over a link with
// fractional loss and corruption profiles and fingerprints what
// arrived, in what state, at what time.
func lossyTimeline(t *testing.T) (string, Stats) {
	t.Helper()
	topo := &Topology{
		Segments:    []SegmentSpec{{}, {}},
		Links:       []LinkSpec{{A: 0, B: 1, DropRate: 0.3, CorruptRate: 0.3}},
		HostSegment: []int{0, 1},
	}
	k := sim.NewKernel(99)
	n, ifcs := newTopoNet(t, k, topo, 2)
	stringHooks(n)
	var timeline string
	k.Spawn("rx", func(p *sim.Proc) {
		for {
			f, ok := ifcs[1].RecvTimeout(p, sim.Duration(time.Second))
			if !ok {
				return
			}
			timeline += fmt.Sprintf("%s@%d;", f.Payload.(string), p.Now())
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 100, Payload: fmt.Sprintf("pkt%d", i)}); err != nil {
				t.Error(err)
			}
			p.Sleep(5 * time.Millisecond)
		}
	})
	k.Run()
	return timeline, n.Stats()
}

// TestLinkProfileDeterministic runs the same fractional loss/corruption
// profile twice: both runs must lose and damage the exact same frames
// at the exact same times — the profiles draw only from the kernel's
// seeded RNG.
func TestLinkProfileDeterministic(t *testing.T) {
	tl1, st1 := lossyTimeline(t)
	tl2, st2 := lossyTimeline(t)
	if tl1 != tl2 {
		t.Fatalf("lossy timelines differ between runs:\n  %s\n  %s", tl1, tl2)
	}
	if st1.FramesDropped != st2.FramesDropped || st1.FramesCorrupted != st2.FramesCorrupted {
		t.Fatalf("fault stats differ: %d/%d dropped, %d/%d corrupted",
			st1.FramesDropped, st2.FramesDropped, st1.FramesCorrupted, st2.FramesCorrupted)
	}
	if st1.FramesDropped == 0 || st1.FramesCorrupted == 0 {
		t.Fatalf("profile never fired (dropped=%d corrupted=%d) — weak test", st1.FramesDropped, st1.FramesCorrupted)
	}
	if tl1 == "" {
		t.Fatal("every frame lost — weak test")
	}
}
