package netsim

// Fault fabric: a scripted, virtual-time fault plan layered under the
// shared-bus model. Every fault is a pure function of the plan, the
// virtual clock, and the kernel's seeded random source, so any faulty
// run replays bit-identically from its seed — and a nil plan leaves the
// send/delivery path exactly as it was (no extra random draws, no extra
// events), keeping existing no-fault runs bit-identical too.
//
// The fabric models what a real segment does to frames: burst loss
// windows, partitions that cut one host group off from the rest,
// duplicated deliveries, payload corruption in flight, and host
// crash/restart (a down host's NIC neither transmits nor receives).
// Payloads are opaque references owned by the remote-operation layer,
// so duplication and corruption go through caller-registered hooks that
// know how to deep-copy and damage a payload without aliasing pooled
// buffers.

import (
	"math/rand"

	"repro/internal/sim"
)

// Window is a half-open virtual-time interval [From, Until). Until 0
// means "until the end of the run".
type Window struct {
	From  sim.Time
	Until sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool {
	return t >= w.From && (w.Until == 0 || t < w.Until)
}

// Burst is a fault-rate window: while open, each frame is subjected to
// the fault with probability Rate.
type Burst struct {
	Window
	Rate float64
}

// Partition cuts the hosts in Group off from every host outside it
// while the window is open. Frames crossing the cut, in either
// direction, are lost; frames within a side pass normally.
type Partition struct {
	Window
	Group []HostID
}

// separates reports whether a and b are on opposite sides of the cut.
func (pt *Partition) separates(a, b HostID) bool {
	return pt.inGroup(a) != pt.inGroup(b)
}

func (pt *Partition) inGroup(h HostID) bool {
	for _, g := range pt.Group {
		if g == h {
			return true
		}
	}
	return false
}

// CrashEvent scripts a host crash at a virtual time. The fabric only
// records the schedule; applying a crash (downing the NIC, discarding
// the host's memory, unwinding its threads) is the cluster layer's job.
type CrashEvent struct {
	At   sim.Time
	Host HostID
}

// LinkCut severs the inter-segment link between segments A and B (in
// both directions) while the window is open — a switched topology's
// native partition: every host behind the cut loses every host beyond
// it, with no host list to enumerate.
type LinkCut struct {
	Window
	A, B int
}

// FaultPlan scripts every fault for one run. The zero value (and a nil
// plan) injects nothing.
type FaultPlan struct {
	// Loss windows drop frames at send time with the window's rate,
	// on top of the network's uniform DropRate.
	Loss []Burst
	// Corrupt windows damage a frame's payload in flight (through the
	// registered corrupt hook), so the receiver's checksum — not luck —
	// decides whether the damage is caught.
	Corrupt []Burst
	// Duplicate windows deliver a second, independent copy of the frame
	// (through the registered clone hook).
	Duplicate []Burst
	// Partitions cut host groups off for their windows.
	Partitions []Partition
	// LinkCuts sever inter-segment links for their windows (switched
	// topologies only; ignored on a one-segment bus).
	LinkCuts []LinkCut
	// Crashes scripts host crash times for the cluster layer.
	Crashes []CrashEvent
}

// rateAt sums the rates of all open windows, capped at 1.
func rateAt(bursts []Burst, t sim.Time) float64 {
	r := 0.0
	for i := range bursts {
		if bursts[i].Contains(t) {
			r += bursts[i].Rate
		}
	}
	if r > 1 {
		r = 1
	}
	return r
}

// cutAt reports whether any open partition separates a and b.
func (fp *FaultPlan) cutAt(t sim.Time, a, b HostID) bool {
	for i := range fp.Partitions {
		if fp.Partitions[i].Contains(t) && fp.Partitions[i].separates(a, b) {
			return true
		}
	}
	return false
}

// Empty reports whether the plan injects nothing.
func (fp *FaultPlan) Empty() bool {
	return fp == nil ||
		(len(fp.Loss) == 0 && len(fp.Corrupt) == 0 && len(fp.Duplicate) == 0 &&
			len(fp.Partitions) == 0 && len(fp.LinkCuts) == 0 && len(fp.Crashes) == 0)
}

// SetFaultPlan installs (or, with nil, removes) the fault plan. It must
// be set before traffic starts.
func (n *Network) SetFaultPlan(fp *FaultPlan) { n.plan = fp }

// FaultPlan returns the installed plan, if any.
func (n *Network) FaultPlan() *FaultPlan { return n.plan }

// SetPayloadHooks registers the payload deep-copy and corruption hooks
// the duplicate/corrupt faults need. clone must return an independent
// copy safe to deliver twice (no shared pooled buffers); corrupt must
// return a copy with wire bytes damaged, drawing any randomness it
// needs from r. The remote-operation layer registers both.
func (n *Network) SetPayloadHooks(clone func(payload any) any, corrupt func(payload any, r *rand.Rand) any) {
	n.clone = clone
	n.corruptFn = corrupt
}

// SetHostDown marks a host's NIC down (crashed) or back up (restarted).
// A down host transmits nothing and frames addressed or broadcast to it
// vanish at delivery time, like frames to a powered-off machine.
func (n *Network) SetHostDown(h HostID, down bool) {
	for int(h) >= len(n.down) {
		n.down = append(n.down, false)
	}
	n.down[h] = down
}

// HostDown reports whether the host's NIC is currently down.
func (n *Network) HostDown(h HostID) bool { return n.hostDown(h) }

// hostDown is the internal bounds-checked form of HostDown.
func (n *Network) hostDown(h HostID) bool {
	return int(h) < len(n.down) && n.down[h]
}

// linkCutNow reports whether the fault plan currently severs link l.
func (n *Network) linkCutNow(l *netlink) bool {
	if n.plan == nil || len(n.plan.LinkCuts) == 0 {
		return false
	}
	now := n.k.Now()
	for i := range n.plan.LinkCuts {
		c := &n.plan.LinkCuts[i]
		if !c.Contains(now) {
			continue
		}
		if (c.A == l.a && c.B == l.b) || (c.A == l.b && c.B == l.a) {
			return true
		}
	}
	return false
}

// sendFaults applies send-time plan faults to a frame that already paid
// its wire time. It reports whether the frame was lost; it may mutate
// f's payload (corruption) or schedule an extra delivery (duplication).
// Only called with a non-nil plan, so no-fault runs draw no randomness.
func (n *Network) sendFaults(f *Frame) (lost bool) {
	now := n.k.Now()
	if r := rateAt(n.plan.Loss, now); r > 0 && n.k.Rand().Float64() < r {
		n.stats.FramesDropped++
		n.stats.FramesBurstLost++
		return true
	}
	if r := rateAt(n.plan.Corrupt, now); r > 0 && n.corruptFn != nil && n.k.Rand().Float64() < r {
		f.Payload = n.corruptFn(f.Payload, n.k.Rand())
		n.stats.FramesCorrupted++
	}
	if r := rateAt(n.plan.Duplicate, now); r > 0 && n.clone != nil && n.k.Rand().Float64() < r {
		dup := *f
		dup.Payload = n.clone(f.Payload)
		n.stats.FramesDuplicated++
		n.scheduleDelivery(dup)
	}
	return false
}

// cut reports whether the partition plan blocks a frame from from to to
// right now, counting it if so.
func (n *Network) cut(from, to HostID) bool {
	if n.plan == nil {
		return false
	}
	if n.plan.cutAt(n.k.Now(), from, to) {
		n.stats.FramesCut++
		return true
	}
	return false
}
