package netsim

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func newNet(t *testing.T, k *sim.Kernel, hosts int) (*Network, []*Interface) {
	t.Helper()
	p := model.Default()
	n := New(k, &p)
	ifcs := make([]*Interface, hosts)
	for i := range ifcs {
		ifc, err := n.Attach(HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		ifcs[i] = ifc
	}
	return n, ifcs
}

func TestUnicastDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	_, ifcs := newNet(t, k, 2)
	var got Frame
	var at sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		got = ifcs[1].Recv(p)
		at = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 1000, Payload: "pg"}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if got.Payload != "pg" {
		t.Fatalf("payload %v", got.Payload)
	}
	// Wire time for 1000+64 bytes at 10 Mb/s = 851.2 µs, + 50 µs latency.
	want := sim.Time(851200*time.Nanosecond + 50*time.Microsecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestMTUEnforced(t *testing.T) {
	k := sim.NewKernel(1)
	_, ifcs := newNet(t, k, 2)
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 8192}); err == nil {
			t.Error("oversized frame accepted; fragmentation not enforced")
		}
	})
	k.Run()
}

func TestWrongInterfaceRejected(t *testing.T) {
	k := sim.NewKernel(1)
	_, ifcs := newNet(t, k, 2)
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 1, To: 0, Size: 10}); err == nil {
			t.Error("spoofed From accepted")
		}
	})
	k.Run()
}

func TestDuplicateAttachRejected(t *testing.T) {
	k := sim.NewKernel(1)
	p := model.Default()
	n := New(k, &p)
	if _, err := n.Attach(3); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(3); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestSharedMediumSerializesTransmissions(t *testing.T) {
	k := sim.NewKernel(1)
	_, ifcs := newNet(t, k, 3)
	var arrivals []sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			ifcs[2].Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("tx", func(p *sim.Proc) {
			if err := ifcs[i].Send(p, Frame{From: HostID(i), To: 2, Size: 1400}); err != nil {
				t.Error(err)
			}
		})
	}
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d frames, want 2", len(arrivals))
	}
	mp := model.Params{BandwidthBps: 10_000_000, HeaderBytes: 64}
	tx := sim.Time(mp.WireTime(1400))
	gap := arrivals[1] - arrivals[0]
	if gap != tx {
		t.Fatalf("arrival gap %v, want one wire time %v (serialized medium)", sim.Duration(gap), sim.Duration(tx))
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	k := sim.NewKernel(1)
	_, ifcs := newNet(t, k, 4)
	got := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		k.Spawn("rx", func(p *sim.Proc) {
			ifcs[i].Recv(p)
			got[i]++
		})
	}
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ifcs[0].Send(p, Frame{From: 0, To: Broadcast, Size: 64}); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	for i := 1; i < 4; i++ {
		if got[i] != 1 {
			t.Fatalf("host %d received %d broadcasts, want 1", i, got[i])
		}
	}
	if ifcs[0].Pending() != 0 {
		t.Fatal("sender received its own broadcast")
	}
}

func TestDropInjection(t *testing.T) {
	k := sim.NewKernel(7)
	n, ifcs := newNet(t, k, 2)
	n.DropRate = 1.0 // lose everything
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 100}); err != nil {
				t.Error(err)
			}
		}
	})
	k.Run()
	if n.Stats().FramesDropped != 5 {
		t.Fatalf("dropped %d, want 5", n.Stats().FramesDropped)
	}
	if ifcs[1].Pending() != 0 {
		t.Fatal("dropped frames were delivered")
	}
}

func TestRecvTimeout(t *testing.T) {
	k := sim.NewKernel(1)
	_, ifcs := newNet(t, k, 2)
	var ok bool
	k.Spawn("rx", func(p *sim.Proc) {
		_, ok = ifcs[0].RecvTimeout(p, 10*time.Millisecond)
	})
	k.Run()
	if ok {
		t.Fatal("RecvTimeout returned a frame on a silent network")
	}
}

func TestStatsAccumulate(t *testing.T) {
	k := sim.NewKernel(1)
	n, ifcs := newNet(t, k, 2)
	k.Spawn("rx", func(p *sim.Proc) {
		ifcs[1].Recv(p)
		ifcs[1].Recv(p)
	})
	k.Spawn("tx", func(p *sim.Proc) {
		_ = ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 700})
		_ = ifcs[0].Send(p, Frame{From: 0, To: 1, Size: 300})
	})
	k.Run()
	s := n.Stats()
	if s.FramesSent != 2 || s.BytesSent != 1000 {
		t.Fatalf("stats %+v, want 2 frames / 1000 bytes", s)
	}
	if s.BusyTime <= 0 {
		t.Fatal("busy time not accounted")
	}
}
