// Package netsim models the cluster's Ethernet in virtual time. The
// default shape is the paper's single 10 Mb/s shared bus: one frame
// transmits at a time, occupying the medium for its wire time, and
// delivery to the destination's interface queue happens after a fixed
// latency. A Topology generalizes this to a switched multi-segment
// network — per-segment media, profiled inter-segment links, spanning-
// tree broadcast — with the one-segment case staying bit-identical to
// the original bus (see topology.go).
//
// The model enforces the MTU — larger messages must be fragmented above
// this layer, exactly as Mermaid had to fragment at user level because
// the Firefly's UDP lacked fragmentation (§2.2). Seeded frame loss can
// be injected to exercise the remote-operation layer's retransmission.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// HostID identifies a host on the network. IDs are dense and start at 0.
type HostID int

// Broadcast is the destination for physical broadcast frames.
const Broadcast HostID = -1

// Frame is one link-layer frame. Payload is an opaque reference (the
// remote-operation layer passes fragment structs); Size is the payload
// size in bytes used for wire-time accounting.
type Frame struct {
	// From is the sending host.
	From HostID
	// To is the destination host, or Broadcast.
	To HostID
	// Size is the payload length in bytes (headers are accounted by the
	// cost model, not included here).
	Size int
	// Payload carries the upper-layer data.
	Payload any
}

// Stats aggregates network-level counters.
type Stats struct {
	// FramesSent counts transmission attempts.
	FramesSent int
	// FramesDropped counts frames lost to injected loss (uniform and
	// burst combined).
	FramesDropped int
	// BytesSent counts payload bytes transmitted.
	BytesSent int
	// BusyTime is the total time the sender-side medium was occupied.
	BusyTime sim.Duration
	// FramesBurstLost counts frames lost to fault-plan loss windows
	// (also included in FramesDropped).
	FramesBurstLost int
	// FramesCut counts frames lost to an open partition or link cut.
	FramesCut int
	// FramesCorrupted counts frames whose payload was damaged in flight.
	FramesCorrupted int
	// FramesDuplicated counts frames delivered twice.
	FramesDuplicated int
	// FramesToDead counts frames that arrived at a down host's NIC.
	FramesToDead int
	// CrossSegmentFrames counts inter-segment link traversals — one per
	// link a frame (or a broadcast's tree copy) crosses. Always 0 on a
	// one-segment network.
	CrossSegmentFrames int
}

// Network is a simulated Ethernet: one shared segment by default, or a
// switched multi-segment topology.
type Network struct {
	k      *sim.Kernel
	params *model.Params
	topo   *Topology
	cable  *sim.Resource // pre-freeze handle for the degenerate bus
	ifaces []*Interface  // dense by HostID
	// DropRate is the probability a frame is lost after transmission.
	// It must only be changed before traffic starts.
	DropRate float64
	stats    Stats

	// Frozen topology tables (built by freeze on first transmission).
	frozen     bool
	segs       []*segment
	links      []*netlink
	hostSeg    []int16
	nextLink   [][]int16 // [src][dst] → first link on the path
	btree      [][]treeEdge
	segArrival []sim.Time // broadcast scratch, one slot per segment
	segPayload []any      // broadcast scratch: payload per segment (corruption forks)

	// labels caches delivery-event names for the model checker's
	// schedule diagnostics; without a chooser installed no label is
	// formatted at all.
	labels map[labelKey]string
	// freeDeliv pools delivery records so steady-state delivery
	// scheduling allocates nothing.
	freeDeliv []*delivery

	// plan scripts injected faults (see fault.go); nil injects nothing.
	plan *FaultPlan
	// down marks crashed hosts' NICs, dense by HostID.
	down []bool
	// clone and corruptFn are the payload hooks for the duplicate and
	// corrupt faults (see SetPayloadHooks).
	clone     func(payload any) any
	corruptFn func(payload any, r *rand.Rand) any
}

type labelKey struct{ to, from HostID }

// Interface is a host's attachment to the network: an inbound queue the
// host's protocol server consumes.
type Interface struct {
	id  HostID
	net *Network
	rx  *sim.TypedQueue[Frame]
}

// delivery is a pooled pending-delivery record: the argument of the
// shared delivery callback, so scheduling a delivery builds no closure.
type delivery struct {
	n   *Network
	ifc *Interface
	f   Frame
}

// deliverPooled is the single delivery callback all delivery events
// share (a top-level function value costs nothing to schedule).
func deliverPooled(a any) {
	d := a.(*delivery)
	n, ifc, f := d.n, d.ifc, d.f
	d.ifc = nil
	d.f = Frame{}
	n.freeDeliv = append(n.freeDeliv, d)
	n.deliver(ifc, f)
}

// New creates a single-segment (shared bus) network using the kernel's
// clock and randomness.
func New(k *sim.Kernel, params *model.Params) *Network {
	return NewWithTopology(k, params, nil)
}

// NewWithTopology creates a network with the given switched topology.
// A nil topology (or one with zero or one segments) is the classic
// shared bus.
func NewWithTopology(k *sim.Kernel, params *model.Params, topo *Topology) *Network {
	return &Network{
		k:      k,
		params: params,
		topo:   topo,
		cable:  sim.NewResource(k, 1),
	}
}

// Topology returns the installed topology (nil for the default bus).
func (n *Network) Topology() *Topology { return n.topo }

// Attach creates the interface for a host. Attaching the same ID twice
// is a configuration error.
func (n *Network) Attach(id HostID) (*Interface, error) {
	if id < 0 {
		return nil, fmt.Errorf("netsim: invalid host id %d", id)
	}
	for int(id) >= len(n.ifaces) {
		n.ifaces = append(n.ifaces, nil)
	}
	if n.ifaces[id] != nil {
		return nil, fmt.Errorf("netsim: host %d already attached", id)
	}
	ifc := &Interface{id: id, net: n, rx: sim.NewTypedQueue[Frame](n.k)}
	n.ifaces[id] = ifc
	if n.frozen {
		// Late attach: extend the frozen member tables in place.
		for int(id) >= len(n.hostSeg) {
			n.hostSeg = append(n.hostSeg, 0)
		}
		s := n.topo.segmentOf(id)
		n.hostSeg[id] = int16(s)
		seg := n.segs[s]
		at := len(seg.members)
		for i, m := range seg.members {
			if m > id {
				at = i
				break
			}
		}
		seg.members = append(seg.members, 0)
		copy(seg.members[at+1:], seg.members[at:])
		seg.members[at] = id
	}
	return ifc, nil
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Send transmits one frame, blocking the calling process for medium
// acquisition plus wire time on its own segment. Delivery (or loss)
// happens asynchronously: after the segment latency for local
// destinations, plus the link path's queuing, wire and propagation
// times for remote ones. Frames above the MTU are rejected: the caller
// must fragment.
func (ifc *Interface) Send(p *sim.Proc, f Frame) error {
	n := ifc.net
	if f.Size > n.params.MTUPayload {
		return fmt.Errorf("netsim: frame of %d bytes exceeds MTU payload %d", f.Size, n.params.MTUPayload)
	}
	if f.From != ifc.id {
		return fmt.Errorf("netsim: frame From %d sent via interface %d", f.From, ifc.id)
	}
	if n.hostDown(f.From) {
		// A crashed host's NIC transmits nothing: the frame vanishes
		// without touching the cable.
		return nil
	}
	n.freeze()
	seg := n.segs[n.segOf(f.From)]
	tx := n.wireTime(f.Size, seg.bps)
	seg.medium.Acquire(p)
	p.Sleep(tx)
	seg.medium.Release()
	n.stats.FramesSent++
	n.stats.BytesSent += f.Size
	n.stats.BusyTime += tx
	if n.DropRate > 0 && n.k.Rand().Float64() < n.DropRate {
		n.stats.FramesDropped++
		return nil
	}
	if n.plan != nil && n.sendFaults(&f) {
		return nil
	}
	n.scheduleDelivery(f)
	return nil
}

// scheduleDelivery queues one named delivery event per destination.
// Broadcast expands here, at send time, into one event per receiver —
// segment by segment along the spanning tree, in host order within each
// segment, so without a chooser the dispatch (seq) order is fixed (a
// map-ordered walk here once made multicast invalidation runs
// nondeterministic). With a chooser each receiver's delivery is an
// independent alternative the model checker can reorder.
func (n *Network) scheduleDelivery(f Frame) {
	src := n.segOf(f.From)
	if f.To == Broadcast {
		if len(n.segs) == 1 {
			n.deliverSegment(n.segs[0], f, n.segs[0].lat)
			return
		}
		n.broadcastTree(src, f)
		return
	}
	if n.cut(f.From, f.To) {
		return
	}
	if int(f.To) >= len(n.ifaces) || n.ifaces[f.To] == nil {
		// Frames to unknown hosts vanish, like on a real wire.
		return
	}
	dst := n.segOf(f.To)
	if dst == src {
		n.scheduleOne(f.To, f, n.segs[dst].lat)
		return
	}
	extra, ok := n.routeDelay(src, dst, &f)
	if !ok {
		return
	}
	n.scheduleOne(f.To, f, extra+n.segs[dst].lat)
}

// deliverSegment schedules delivery to every member of a segment (in
// host order) after the given delay, skipping the sender and partition-
// cut receivers.
func (n *Network) deliverSegment(seg *segment, f Frame, delay sim.Duration) {
	for _, id := range seg.members {
		if id == f.From {
			continue
		}
		if n.cut(f.From, id) {
			continue
		}
		n.scheduleOne(id, f, delay)
	}
}

// scheduleOne queues one delivery event from a pooled record.
func (n *Network) scheduleOne(to HostID, f Frame, delay sim.Duration) {
	var d *delivery
	if last := len(n.freeDeliv) - 1; last >= 0 {
		d = n.freeDeliv[last]
		n.freeDeliv[last] = nil
		n.freeDeliv = n.freeDeliv[:last]
	} else {
		d = &delivery{n: n}
	}
	d.ifc = n.ifaces[to]
	d.f = f
	n.k.AfterNamedArg(n.deliveryLabel(to, f.From), delay, deliverPooled, d)
}

// deliver puts a frame on the destination's receive queue unless the
// host's NIC went down while the frame was in flight.
func (n *Network) deliver(ifc *Interface, f Frame) {
	if n.hostDown(ifc.id) {
		n.stats.FramesToDead++
		return
	}
	ifc.rx.Put(f)
}

// deliveryLabel names a delivery event for schedule diagnostics. Labels
// only matter to an installed chooser (the model checker's choice-point
// display); plain runs skip the formatting entirely. Labels are
// interned per (to, from) pair so steady-state delivery does not
// re-format them.
func (n *Network) deliveryLabel(to, from HostID) string {
	if !n.k.HasChooser() {
		return ""
	}
	key := labelKey{to: to, from: from}
	if s, ok := n.labels[key]; ok {
		return s
	}
	if n.labels == nil {
		n.labels = make(map[labelKey]string)
	}
	s := fmt.Sprintf("net:h%d<-h%d", to, from)
	n.labels[key] = s
	return s
}

// Recv blocks until a frame arrives and returns it.
func (ifc *Interface) Recv(p *sim.Proc) Frame {
	return ifc.rx.Get(p)
}

// RecvTimeout is Recv with a deadline.
func (ifc *Interface) RecvTimeout(p *sim.Proc, d sim.Duration) (Frame, bool) {
	return ifc.rx.GetTimeout(p, d)
}

// Pending returns the number of frames queued for this interface.
func (ifc *Interface) Pending() int { return ifc.rx.Len() }

// ID returns the interface's host ID.
func (ifc *Interface) ID() HostID { return ifc.id }

// Network returns the network this interface is attached to.
func (ifc *Interface) Network() *Network { return ifc.net }
