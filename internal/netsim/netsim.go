// Package netsim models the cluster's 10 Mb/s shared-bus Ethernet in
// virtual time. The cable is a single resource: one frame transmits at a
// time, occupying the medium for its wire time; delivery to the
// destination's interface queue happens after a fixed latency.
//
// The model enforces the MTU — larger messages must be fragmented above
// this layer, exactly as Mermaid had to fragment at user level because
// the Firefly's UDP lacked fragmentation (§2.2). Seeded frame loss can
// be injected to exercise the remote-operation layer's retransmission.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
)

// HostID identifies a host on the network. IDs are dense and start at 0.
type HostID int

// Broadcast is the destination for physical broadcast frames.
const Broadcast HostID = -1

// Frame is one link-layer frame. Payload is an opaque reference (the
// remote-operation layer passes fragment structs); Size is the payload
// size in bytes used for wire-time accounting.
type Frame struct {
	// From is the sending host.
	From HostID
	// To is the destination host, or Broadcast.
	To HostID
	// Size is the payload length in bytes (headers are accounted by the
	// cost model, not included here).
	Size int
	// Payload carries the upper-layer data.
	Payload any
}

// Stats aggregates network-level counters.
type Stats struct {
	// FramesSent counts transmission attempts.
	FramesSent int
	// FramesDropped counts frames lost to injected loss (uniform and
	// burst combined).
	FramesDropped int
	// BytesSent counts payload bytes transmitted.
	BytesSent int
	// BusyTime is the total time the medium was occupied.
	BusyTime sim.Duration
	// FramesBurstLost counts frames lost to fault-plan loss windows
	// (also included in FramesDropped).
	FramesBurstLost int
	// FramesCut counts frames lost to an open partition.
	FramesCut int
	// FramesCorrupted counts frames whose payload was damaged in flight.
	FramesCorrupted int
	// FramesDuplicated counts frames delivered twice.
	FramesDuplicated int
	// FramesToDead counts frames that arrived at a down host's NIC.
	FramesToDead int
}

// Network is a simulated shared Ethernet segment.
type Network struct {
	k      *sim.Kernel
	params *model.Params
	cable  *sim.Resource
	ifaces map[HostID]*Interface
	// DropRate is the probability a frame is lost after transmission.
	// It must only be changed before traffic starts.
	DropRate float64
	stats    Stats

	// bcast caches the sorted receiver list for broadcast expansion
	// (invalidated by Attach); labels caches delivery-event names. Both
	// keep the per-frame delivery path allocation-free.
	bcast  []HostID
	labels map[labelKey]string

	// plan scripts injected faults (see fault.go); nil injects nothing.
	plan *FaultPlan
	// down marks crashed hosts' NICs.
	down map[HostID]bool
	// clone and corruptFn are the payload hooks for the duplicate and
	// corrupt faults (see SetPayloadHooks).
	clone     func(payload any) any
	corruptFn func(payload any, r *rand.Rand) any
}

type labelKey struct{ to, from HostID }

// Interface is a host's attachment to the network: an inbound queue the
// host's protocol server consumes.
type Interface struct {
	id  HostID
	net *Network
	rx  *sim.Queue
}

// New creates a network using the kernel's clock and randomness.
func New(k *sim.Kernel, params *model.Params) *Network {
	return &Network{
		k:      k,
		params: params,
		cable:  sim.NewResource(k, 1),
		ifaces: make(map[HostID]*Interface),
	}
}

// Attach creates the interface for a host. Attaching the same ID twice
// is a configuration error.
func (n *Network) Attach(id HostID) (*Interface, error) {
	if _, dup := n.ifaces[id]; dup {
		return nil, fmt.Errorf("netsim: host %d already attached", id)
	}
	ifc := &Interface{id: id, net: n, rx: sim.NewQueue(n.k)}
	n.ifaces[id] = ifc
	n.bcast = nil // rebuild the broadcast expansion on next use
	return ifc, nil
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Send transmits one frame, blocking the calling process for medium
// acquisition plus wire time. Delivery (or loss) happens asynchronously
// after the packet latency. Frames above the MTU are rejected: the
// caller must fragment.
func (ifc *Interface) Send(p *sim.Proc, f Frame) error {
	n := ifc.net
	if f.Size > n.params.MTUPayload {
		return fmt.Errorf("netsim: frame of %d bytes exceeds MTU payload %d", f.Size, n.params.MTUPayload)
	}
	if f.From != ifc.id {
		return fmt.Errorf("netsim: frame From %d sent via interface %d", f.From, ifc.id)
	}
	if n.down[f.From] {
		// A crashed host's NIC transmits nothing: the frame vanishes
		// without touching the cable.
		return nil
	}
	tx := n.params.WireTime(f.Size)
	n.cable.Acquire(p)
	p.Sleep(tx)
	n.cable.Release()
	n.stats.FramesSent++
	n.stats.BytesSent += f.Size
	n.stats.BusyTime += tx
	if n.DropRate > 0 && n.k.Rand().Float64() < n.DropRate {
		n.stats.FramesDropped++
		return nil
	}
	if n.plan != nil && n.sendFaults(&f) {
		return nil
	}
	n.scheduleDelivery(f)
	return nil
}

// scheduleDelivery queues one named delivery event per destination,
// packet latency from now. Broadcast expands here, at send time, into
// one event per receiver — in host order, so without a chooser the
// dispatch (seq) order matches the previous single-callback behavior
// (a map-ordered walk here once made multicast invalidation runs
// nondeterministic). With a chooser each receiver's delivery is an
// independent alternative the model checker can reorder.
func (n *Network) scheduleDelivery(f Frame) {
	if f.To == Broadcast {
		if n.bcast == nil {
			ids := make([]HostID, 0, len(n.ifaces))
			for id := range n.ifaces {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			n.bcast = ids
		}
		for _, id := range n.bcast {
			if id == f.From {
				continue
			}
			if n.cut(f.From, id) {
				continue
			}
			ifc := n.ifaces[id]
			n.k.AfterNamed(n.deliveryLabel(id, f.From), n.params.PacketLatency, func() { n.deliver(ifc, f) })
		}
		return
	}
	if n.cut(f.From, f.To) {
		return
	}
	if ifc, ok := n.ifaces[f.To]; ok {
		n.k.AfterNamed(n.deliveryLabel(f.To, f.From), n.params.PacketLatency, func() { n.deliver(ifc, f) })
	}
	// Frames to unknown hosts vanish, like on a real wire.
}

// deliver puts a frame on the destination's receive queue unless the
// host's NIC went down while the frame was in flight.
func (n *Network) deliver(ifc *Interface, f Frame) {
	if n.down[ifc.id] {
		n.stats.FramesToDead++
		return
	}
	ifc.rx.Put(f)
}

// deliveryLabel names a delivery event for schedule diagnostics. Labels
// are interned per (to, from) pair so steady-state delivery does not
// re-format them.
func (n *Network) deliveryLabel(to, from HostID) string {
	key := labelKey{to: to, from: from}
	if s, ok := n.labels[key]; ok {
		return s
	}
	if n.labels == nil {
		n.labels = make(map[labelKey]string)
	}
	s := fmt.Sprintf("net:h%d<-h%d", to, from)
	n.labels[key] = s
	return s
}

// Recv blocks until a frame arrives and returns it.
func (ifc *Interface) Recv(p *sim.Proc) Frame {
	return ifc.rx.Get(p).(Frame)
}

// RecvTimeout is Recv with a deadline.
func (ifc *Interface) RecvTimeout(p *sim.Proc, d sim.Duration) (Frame, bool) {
	v, ok := ifc.rx.GetTimeout(p, d)
	if !ok {
		return Frame{}, false
	}
	return v.(Frame), true
}

// Pending returns the number of frames queued for this interface.
func (ifc *Interface) Pending() int { return ifc.rx.Len() }

// ID returns the interface's host ID.
func (ifc *Interface) ID() HostID { return ifc.id }

// Network returns the network this interface is attached to.
func (ifc *Interface) Network() *Network { return ifc.net }
