// Package model holds the calibrated virtual-time cost model of the
// reproduction. Primitive costs — page-fault handling, per-fragment
// message processing, data-conversion per element, computation per
// operation — are calibrated against the paper's Tables 1–3 and the
// quoted application run times; every end-to-end number (Table 4 and all
// figures) then *emerges* from simulating the protocol with these
// primitives. See DESIGN.md for the fit derivation and EXPERIMENTS.md
// for the paper-vs-measured comparison.
package model

import (
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
)

// PerKind holds one duration per machine kind.
type PerKind struct {
	// Sun is the cost on a Sun-3/60.
	Sun time.Duration
	// Firefly is the cost on a Firefly node.
	Firefly time.Duration
}

// Of returns the cost for the given machine kind.
func (p PerKind) Of(k arch.Kind) time.Duration {
	if k == arch.Sun {
		return p.Sun
	}
	return p.Firefly
}

// Params is the complete cost model. All durations are virtual time.
type Params struct {
	// --- Network wire (10 Mb/s shared Ethernet) ---

	// BandwidthBps is the raw bit rate of the shared medium.
	BandwidthBps int64
	// PacketLatency is the fixed per-packet propagation/queuing delay
	// after transmission completes.
	PacketLatency time.Duration
	// MTUPayload is the maximum user payload per packet; larger
	// messages are fragmented at user level (§2.2: the Firefly's UDP
	// lacks fragmentation, so Mermaid fragments above UDP).
	MTUPayload int
	// HeaderBytes is the per-packet header overhead on the wire
	// (Ethernet + IP + UDP + Mermaid fragment header).
	HeaderBytes int

	// --- Page fault handling (Table 1) ---

	// FaultRead is the cost of fielding a read fault: user-level
	// handler invocation, DSM page table processing, and request
	// transmission.
	FaultRead PerKind
	// FaultWrite is the same for write faults.
	FaultWrite PerKind

	// --- Page transfer processing (fitted to Table 2) ---
	//
	// A bulk (page-carrying) message costs, at the sender,
	// MsgSetup + n×FragCost interleaved with the wire time of its n
	// fragments; the receiver charges MsgSetup + n×FragCost (+
	// CrossPenalty for a cross-type transfer) when reassembly
	// completes. With these constants the simulated Table 2 lands
	// within a few percent of the paper's (see model calibration test).

	// MsgSetup is the fixed per-bulk-message protocol cost at each end.
	MsgSetup PerKind
	// FragCost is the per-fragment processing cost at each end
	// (user-level fragmentation and reassembly; higher on the Firefly,
	// which also locks shared structures on its multiprocessor).
	FragCost PerKind
	// CrossPenalty is the extra per-transfer receive cost when the two
	// ends are of different machine types.
	CrossPenalty time.Duration

	// --- Control messages and manager processing (fitted to Table 4) ---

	// ManagerProcess is the cost of receiving a page request at the
	// page's manager: table lookup plus forwarding or local handling.
	ManagerProcess PerKind
	// OwnerProcess is the cost of fielding a (possibly forwarded) page
	// request at the owner before the page body is sent.
	OwnerProcess PerKind
	// ForwardCost is the extra cost at the manager of forwarding a
	// request to the owner on a third host.
	ForwardCost PerKind
	// InvalidateProcess is the cost of handling one invalidation at a
	// copyset member (unmap + ack).
	InvalidateProcess PerKind
	// InstallCost is charged on the requester after the page body
	// arrives (and is converted): page table update, mapping the page,
	// resuming the faulted thread.
	InstallCost PerKind

	// --- Data conversion (Table 3), per element, Firefly baseline ---

	// ConvInt16, ConvInt32, ConvFloat32, ConvFloat64, ConvPointer are
	// per-element conversion costs on a Firefly; ConvByte is the
	// per-byte cost of inspected-but-uncoverted data.
	ConvInt16   time.Duration
	ConvInt32   time.Duration
	ConvFloat32 time.Duration
	ConvFloat64 time.Duration
	ConvPointer time.Duration
	ConvByte    time.Duration
	// CPUFactor scales CPU-bound costs per kind relative to the
	// Firefly (the Sun-3/60 is ≈1.31× slower per the compound-record
	// measurement in §3.1).
	CPUFactor struct {
		Sun     float64
		Firefly float64
	}

	// --- Application computation ---

	// MACCost is the per multiply-accumulate cost of the matrix
	// multiplication inner loop on a Firefly (scaled by CPUFactor).
	MACCost time.Duration
	// PCBPixelCost is the per-pixel base cost of PCB design-rule
	// checking on a Firefly (scaled by CPUFactor).
	PCBPixelCost time.Duration
	// PCBFeatureCost is the extra cost per feature-pixel examined
	// (conductors and pads cost more than empty board).
	PCBFeatureCost time.Duration

	// --- Thread and synchronization management ---

	// ThreadCreate is the local cost of creating a thread.
	ThreadCreate PerKind
	// SyncProcess is the processing cost of one P/V/event/barrier
	// operation at the synchronization manager.
	SyncProcess PerKind
	// RemoteOpProcess is the server-side cost of one central-server
	// read or write operation (the no-caching DSM algorithm of the
	// authors' companion paper, provided as an alternative policy).
	RemoteOpProcess PerKind

	// --- Protocol behaviour ---

	// ProcessJitterPct, when non-zero, perturbs every protocol
	// processing charge by ±this fraction (seeded by the simulation),
	// modelling per-request variability — cache misses, lock
	// contention — that makes real thrashing runs fluctuate. Zero (the
	// default) keeps the primitive-cost tables exactly reproducible.
	ProcessJitterPct float64

	// RequestTimeout is the remote-operation retransmission timeout.
	RequestTimeout time.Duration
	// MaxRetries bounds retransmissions before a call fails.
	MaxRetries int
	// BlockingRetryInterval is the retransmission period for calls that
	// may legitimately block for a long time (P on a semaphore, event
	// waits, barrier arrivals); these retry forever.
	BlockingRetryInterval time.Duration

	// --- Failure detection (crash-stop fault tolerance) ---

	// HeartbeatInterval is the period of the failure detector's liveness
	// broadcast. Heartbeats (and the detector itself) only run when the
	// cluster enables failure detection.
	HeartbeatInterval time.Duration
	// SuspicionTimeout is how long a host may stay silent before the
	// detector suspects it; a suspect that stays silent for a second
	// timeout is declared dead. It must comfortably exceed
	// HeartbeatInterval plus worst-case medium occupancy.
	SuspicionTimeout time.Duration
}

// Default returns the cost model calibrated against the paper.
func Default() Params {
	p := Params{
		BandwidthBps:  10_000_000, // 10 Mb/s Ethernet
		PacketLatency: 50 * time.Microsecond,
		MTUPayload:    1400,
		HeaderBytes:   64,

		FaultRead:  PerKind{Sun: 1980 * time.Microsecond, Firefly: 6800 * time.Microsecond},
		FaultWrite: PerKind{Sun: 2040 * time.Microsecond, Firefly: 6700 * time.Microsecond},

		MsgSetup:     PerKind{Sun: 1399 * time.Microsecond, Firefly: 859 * time.Microsecond},
		FragCost:     PerKind{Sun: 691 * time.Microsecond, Firefly: 2031 * time.Microsecond},
		CrossPenalty: 1200 * time.Microsecond,

		ManagerProcess:    PerKind{Sun: 3000 * time.Microsecond, Firefly: 3100 * time.Microsecond},
		OwnerProcess:      PerKind{Sun: 1900 * time.Microsecond, Firefly: 4600 * time.Microsecond},
		ForwardCost:       PerKind{Sun: 1900 * time.Microsecond, Firefly: 4600 * time.Microsecond},
		InvalidateProcess: PerKind{Sun: 1000 * time.Microsecond, Firefly: 1500 * time.Microsecond},
		InstallCost:       PerKind{Sun: 4300 * time.Microsecond, Firefly: 2000 * time.Microsecond},

		ConvInt16:   2686 * time.Nanosecond,
		ConvInt32:   5322 * time.Nanosecond,
		ConvFloat32: 10547 * time.Nanosecond,
		ConvFloat64: 28223 * time.Nanosecond,
		ConvPointer: 5322 * time.Nanosecond,
		ConvByte:    100 * time.Nanosecond,

		MACCost:        2700 * time.Nanosecond,
		PCBPixelCost:   420 * time.Microsecond,
		PCBFeatureCost: 180 * time.Microsecond,

		ThreadCreate:    PerKind{Sun: 500 * time.Microsecond, Firefly: 300 * time.Microsecond},
		SyncProcess:     PerKind{Sun: 800 * time.Microsecond, Firefly: 1000 * time.Microsecond},
		RemoteOpProcess: PerKind{Sun: 1500 * time.Microsecond, Firefly: 2000 * time.Microsecond},

		RequestTimeout:        500 * time.Millisecond,
		MaxRetries:            10,
		BlockingRetryInterval: 5 * time.Second,

		HeartbeatInterval: 250 * time.Millisecond,
		SuspicionTimeout:  1 * time.Second,
	}
	p.CPUFactor.Sun = 1.31
	p.CPUFactor.Firefly = 1.0
	return p
}

// Factor returns the CPU scaling factor for a machine kind.
func (p *Params) Factor(k arch.Kind) float64 {
	if k == arch.Sun {
		return p.CPUFactor.Sun
	}
	return p.CPUFactor.Firefly
}

// Scale multiplies a Firefly-baseline CPU cost by the kind's factor.
func (p *Params) Scale(k arch.Kind, d time.Duration) time.Duration {
	return time.Duration(float64(d) * p.Factor(k))
}

// WireTime returns the transmission time of payload bytes plus header on
// the shared medium (excluding PacketLatency).
func (p *Params) WireTime(payloadBytes int) time.Duration {
	bits := int64(payloadBytes+p.HeaderBytes) * 8
	return time.Duration(bits * int64(time.Second) / p.BandwidthBps)
}

// Fragments returns how many packets a message of the given size needs.
func (p *Params) Fragments(msgBytes int) int {
	if msgBytes <= 0 {
		return 1
	}
	return (msgBytes + p.MTUPayload - 1) / p.MTUPayload
}

// ConvertCost converts conversion cost units into virtual time on the
// given machine kind.
func (p *Params) ConvertCost(k arch.Kind, u conv.CostUnits) time.Duration {
	base := time.Duration(u.Int16Ops)*p.ConvInt16 +
		time.Duration(u.Int32Ops)*p.ConvInt32 +
		time.Duration(u.Float32Ops)*p.ConvFloat32 +
		time.Duration(u.Float64Ops)*p.ConvFloat64 +
		time.Duration(u.PointerOps)*p.ConvPointer +
		time.Duration(u.Bytes)*p.ConvByte
	return p.Scale(k, base)
}

// RegionConvertCost is the cost of converting n elements of a type with
// per-element cost units u on machine kind k.
func (p *Params) RegionConvertCost(k arch.Kind, u conv.CostUnits, n int) time.Duration {
	return time.Duration(n) * p.ConvertCost(k, u)
}
