package model

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
)

func TestWireTime(t *testing.T) {
	p := Default()
	// 1024 bytes + 64 header = 1088 bytes = 8704 bits at 10 Mb/s = 870.4 µs.
	got := p.WireTime(1024)
	want := 870400 * time.Nanosecond
	if got != want {
		t.Fatalf("WireTime(1024) = %v, want %v", got, want)
	}
}

func TestFragments(t *testing.T) {
	p := Default()
	tests := []struct {
		give int
		want int
	}{
		{0, 1}, {1, 1}, {1400, 1}, {1401, 2}, {8192, 6}, {1024, 1},
	}
	for _, tt := range tests {
		if got := p.Fragments(tt.give); got != tt.want {
			t.Errorf("Fragments(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestFaultCostsMatchTable1(t *testing.T) {
	p := Default()
	if p.FaultRead.Of(arch.Sun) != 1980*time.Microsecond {
		t.Error("Sun read fault cost drifted from Table 1")
	}
	if p.FaultWrite.Of(arch.Sun) != 2040*time.Microsecond {
		t.Error("Sun write fault cost drifted from Table 1")
	}
	if p.FaultRead.Of(arch.Firefly) != 6800*time.Microsecond {
		t.Error("Firefly read fault cost drifted from Table 1")
	}
	if p.FaultWrite.Of(arch.Firefly) != 6700*time.Microsecond {
		t.Error("Firefly write fault cost drifted from Table 1")
	}
}

func TestConversionCostsMatchTable3(t *testing.T) {
	// Converting a full 8 KB page on a Firefly must land near the
	// paper's Table 3 values (ms): int 10.9, short 11.0, float 21.6,
	// double 28.9.
	p := Default()
	tests := []struct {
		name   string
		unit   conv.CostUnits
		size   int
		wantMS float64
	}{
		{name: "int", unit: conv.CostUnits{Int32Ops: 1}, size: 4, wantMS: 10.9},
		{name: "short", unit: conv.CostUnits{Int16Ops: 1}, size: 2, wantMS: 11.0},
		{name: "float", unit: conv.CostUnits{Float32Ops: 1}, size: 4, wantMS: 21.6},
		{name: "double", unit: conv.CostUnits{Float64Ops: 1}, size: 8, wantMS: 28.9},
	}
	for _, tt := range tests {
		n := 8192 / tt.size
		got := p.RegionConvertCost(arch.Firefly, tt.unit, n)
		gotMS := float64(got) / float64(time.Millisecond)
		if gotMS < tt.wantMS*0.97 || gotMS > tt.wantMS*1.03 {
			t.Errorf("8KB %s conversion = %.2f ms, want ≈%.1f ms", tt.name, gotMS, tt.wantMS)
		}
	}
}

func TestCompoundRecordConversionMatchesPaper(t *testing.T) {
	// §3.1: converting an 8 KB page of records (3 ints, 3 floats, 4
	// shorts) took 19.6 ms on a Sun3/60.
	p := Default()
	unit := conv.CostUnits{Int32Ops: 3, Float32Ops: 3, Int16Ops: 4}
	recSize := 3*4 + 3*4 + 4*2 // 32 bytes
	n := 8192 / recSize
	got := p.RegionConvertCost(arch.Sun, unit, n)
	gotMS := float64(got) / float64(time.Millisecond)
	if gotMS < 17.5 || gotMS > 21.5 {
		t.Errorf("8KB record conversion on Sun = %.2f ms, want ≈19.6 ms", gotMS)
	}
}

func TestScaleAppliesCPUFactor(t *testing.T) {
	p := Default()
	d := time.Millisecond
	if p.Scale(arch.Firefly, d) != d {
		t.Error("Firefly factor must be 1.0")
	}
	if p.Scale(arch.Sun, d) != time.Duration(1.31*float64(d)) {
		t.Error("Sun factor must be 1.31")
	}
}

func TestPerKindOf(t *testing.T) {
	pk := PerKind{Sun: time.Second, Firefly: time.Minute}
	if pk.Of(arch.Sun) != time.Second || pk.Of(arch.Firefly) != time.Minute {
		t.Fatal("PerKind.Of dispatches incorrectly")
	}
}
