# The check target runs exactly what CI runs (.github/workflows/ci.yml);
# keep the two in lockstep.

.PHONY: check build vet fmt test race mermaid-vet

check: build vet fmt test race mermaid-vet

build:
	go build ./...

vet:
	go vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	go test ./...

race:
	go test -race ./internal/sim/... ./internal/dsm/... ./internal/dsync/...

mermaid-vet:
	go run ./cmd/mermaid-vet ./...
