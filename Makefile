# The check target runs exactly what CI runs (.github/workflows/ci.yml);
# keep the two in lockstep.

.PHONY: check build vet fmt test race mermaid-vet bench-files mc-smoke mc-deep chaos-smoke chaos-deep bench bench-smoke scale-smoke scale-deep

check: build vet fmt test race mermaid-vet bench-files mc-smoke chaos-smoke scale-smoke

build:
	go build ./...

vet:
	go vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	go test ./...

race:
	go test -race ./internal/sim/... ./internal/dsm/... ./internal/dsync/... ./internal/threads/...

# Two runs: the first warms the build cache (and fails fast on
# findings), the second emits the JSON coverage report CI archives and
# asserts the analyzer's wall-clock budget — a regression that makes
# the interprocedural layer super-linear fails check, not just CI.
mermaid-vet:
	go run ./cmd/mermaid-vet ./...
	go run ./cmd/mermaid-vet -json -max-elapsed-ms=5000 ./... > mermaid-vet.json

# Wall-clock benchmark harness: run the Real* micro-benchmarks and
# freeze the numbers into BENCH_1.json via mermaid-benchjson. The
# intermediate text file keeps parse failures distinguishable from
# benchmark failures.
bench:
	go test -run '^$$' -bench Real -benchmem . > bench_real.txt
	go run ./cmd/mermaid-benchjson -o BENCH_1.json < bench_real.txt
	go run ./cmd/mermaid-benchjson -validate BENCH_1.json
	@rm -f bench_real.txt
	go test -run '^$$' -bench 'SimKernel1024Hosts|BusInvalidation|SwitchedInvalidation' -benchmem . > bench_scale.txt
	go run ./cmd/mermaid-benchjson -o BENCH_2.json < bench_scale.txt
	go run ./cmd/mermaid-benchjson -validate BENCH_2.json
	@rm -f bench_scale.txt
	go test -run '^$$' -bench QuorumFanout -benchmem . > bench_quorum.txt
	go run ./cmd/mermaid-benchjson -o BENCH_3.json < bench_quorum.txt
	go run ./cmd/mermaid-benchjson -validate BENCH_3.json
	@rm -f bench_quorum.txt
	go test -run '^$$' -bench 'RCDiffEncode|RCMerge' -benchmem . > bench_rc.txt
	go run ./cmd/mermaid-benchjson -o BENCH_4.json < bench_rc.txt
	go run ./cmd/mermaid-benchjson -validate BENCH_4.json
	@rm -f bench_rc.txt

# Every frozen BENCH_N.json this Makefile regenerates must be checked
# in: a bench step added without committing its baseline looks green
# locally and silently ships no reference numbers (BENCH_3 did exactly
# that for one release).
bench-files:
	@missing=0; \
	for f in $$(grep -oh 'BENCH_[0-9]*\.json' Makefile | sort -u); do \
		if [ ! -f "$$f" ]; then echo "missing frozen benchmark $$f (referenced by Makefile)" >&2; missing=1; fi; \
	done; \
	exit $$missing

# CI variant: a handful of iterations only — proves the harness and the
# JSON pipeline work without burning minutes on stable numbers.
bench-smoke:
	go test -run '^$$' -bench Real -benchmem -benchtime 10x . > bench_smoke.txt
	go run ./cmd/mermaid-benchjson -o bench_smoke.json < bench_smoke.txt
	go run ./cmd/mermaid-benchjson -validate bench_smoke.json
	@rm -f bench_smoke.txt bench_smoke.json

# Bounded model-checking smoke: exhaustive DFS over the 2-host smoke
# workload (must stay clean) plus one representative mutation per
# oracle family (must be killed). Budgeted to finish well under a
# minute; the full sweep is mc-deep.
mc-smoke:
	go run ./cmd/mermaid-mc -workload=basic -strategy=dfs -max-schedules=1200
	go run ./cmd/mermaid-mc -workload=basic -mutation=skip-invalidation -max-schedules=100
	go run ./cmd/mermaid-mc -workload=basic -mutation=skip-conversion -max-schedules=100
	go run ./cmd/mermaid-mc -workload=dynamic -strategy=dfs -max-schedules=1200
	go run ./cmd/mermaid-mc -workload=dynamic -mutation=stale-probable-owner -max-schedules=100
	go run ./cmd/mermaid-mc -workload=quorum -strategy=dfs -max-schedules=1200
	go run ./cmd/mermaid-mc -workload=quorum -mutation=stale-quorum-read -max-schedules=100
	go run ./cmd/mermaid-mc -workload=quorum -mutation=split-brain-write -max-schedules=100
	go run ./cmd/mermaid-mc -workload=rc -strategy=dfs -max-schedules=1200
	go run ./cmd/mermaid-mc -workload=rc -mutation=lost-diff -max-schedules=100
	go run ./cmd/mermaid-mc -workload=rc -mutation=stale-twin-merge -max-schedules=100

# Chaos smoke: one seed per workload × fault class (24 campaigns).
# Every run must survive its fault schedule — a violation prints a
# replay token and fails the build. Budgeted for CI; chaos-deep widens
# the seed range and double-runs everything for determinism.
chaos-smoke:
	go run ./cmd/mermaid-chaos -workload=slots -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=slots -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=slots -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=slots -class=mix -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=counter -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=counter -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=counter -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=counter -class=mix -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=handoff -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=handoff -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=handoff -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=handoff -class=mix -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=forward -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=forward -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=forward -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=forward -class=mix -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=switched -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=switched -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=switched -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=switched -class=mix -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=quorum -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=quorum -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=quorum -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=quorum -class=mix -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=rc -class=drop -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=rc -class=partition -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=rc -class=crash -seed=1 -runs=1
	go run ./cmd/mermaid-chaos -workload=rc -class=mix -seed=1 -runs=1

# Nightly-depth chaos: 25 seeds per workload × class with a
# determinism double-run (-verify) on every campaign.
chaos-deep:
	go run ./cmd/mermaid-chaos -workload=slots -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=slots -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=slots -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=slots -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=counter -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=counter -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=counter -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=counter -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=handoff -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=handoff -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=handoff -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=handoff -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=forward -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=forward -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=forward -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=forward -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=switched -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=switched -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=switched -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=switched -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=quorum -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=quorum -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=quorum -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=quorum -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=rc -class=drop -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=rc -class=partition -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=rc -class=crash -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=rc -class=mix -seed=1 -runs=25 -verify
	go run ./cmd/mermaid-chaos -workload=quorum -class=mix -seed=1 -runs=5 -mutation=stale-quorum-read
	go run ./cmd/mermaid-chaos -workload=quorum -class=mix -seed=1 -runs=5 -mutation=split-brain-write
	go run ./cmd/mermaid-chaos -workload=rc -class=drop -seed=1 -runs=5 -mutation=lost-diff

# Full mutation-kill suite plus a deeper clean sweep of every workload —
# the nightly-depth run.
mc-deep:
	go run ./cmd/mermaid-mc -kill -kill-budget=500
	go run ./cmd/mermaid-mc -workload=basic -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=matmul -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=ring -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=sem -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=barrier -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=update -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=dynamic -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=quorum -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=rc -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=basic -strategy=random -runs=2000
	go run ./cmd/mermaid-mc -workload=matmul -strategy=delay -delays=3 -max-schedules=5000

# Directory-scaling smoke: the N∈{16,64,256} bus+switched ablation
# (single-digit seconds). The full 1024-host sweep is scale-deep.
scale-smoke:
	go run ./cmd/mermaid-bench -only scale

# Nightly-depth scaling: the 1024-host cluster ablation on both the
# one-segment bus and the 32×32 switched fabric.
scale-deep:
	go run ./cmd/mermaid-bench -only scale1k
