# The check target runs exactly what CI runs (.github/workflows/ci.yml);
# keep the two in lockstep.

.PHONY: check build vet fmt test race mermaid-vet mc-smoke mc-deep bench bench-smoke

check: build vet fmt test race mermaid-vet mc-smoke

build:
	go build ./...

vet:
	go vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	go test ./...

race:
	go test -race ./internal/sim/... ./internal/dsm/... ./internal/dsync/...

mermaid-vet:
	go run ./cmd/mermaid-vet ./...

# Wall-clock benchmark harness: run the Real* micro-benchmarks and
# freeze the numbers into BENCH_1.json via mermaid-benchjson. The
# intermediate text file keeps parse failures distinguishable from
# benchmark failures.
bench:
	go test -run '^$$' -bench Real -benchmem . > bench_real.txt
	go run ./cmd/mermaid-benchjson -o BENCH_1.json < bench_real.txt
	go run ./cmd/mermaid-benchjson -validate BENCH_1.json
	@rm -f bench_real.txt

# CI variant: a handful of iterations only — proves the harness and the
# JSON pipeline work without burning minutes on stable numbers.
bench-smoke:
	go test -run '^$$' -bench Real -benchmem -benchtime 10x . > bench_smoke.txt
	go run ./cmd/mermaid-benchjson -o bench_smoke.json < bench_smoke.txt
	go run ./cmd/mermaid-benchjson -validate bench_smoke.json
	@rm -f bench_smoke.txt bench_smoke.json

# Bounded model-checking smoke: exhaustive DFS over the 2-host smoke
# workload (must stay clean) plus one representative mutation per
# oracle family (must be killed). Budgeted to finish well under a
# minute; the full sweep is mc-deep.
mc-smoke:
	go run ./cmd/mermaid-mc -workload=basic -strategy=dfs -max-schedules=1200
	go run ./cmd/mermaid-mc -workload=basic -mutation=skip-invalidation -max-schedules=100
	go run ./cmd/mermaid-mc -workload=basic -mutation=skip-conversion -max-schedules=100

# Full mutation-kill suite plus a deeper clean sweep of every workload —
# the nightly-depth run.
mc-deep:
	go run ./cmd/mermaid-mc -kill -kill-budget=500
	go run ./cmd/mermaid-mc -workload=basic -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=matmul -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=ring -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=sem -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=barrier -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=update -strategy=dfs -max-schedules=5000
	go run ./cmd/mermaid-mc -workload=basic -strategy=random -runs=2000
	go run ./cmd/mermaid-mc -workload=matmul -strategy=delay -delays=3 -max-schedules=5000
