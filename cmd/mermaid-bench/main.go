// Command mermaid-bench regenerates every table and figure of the
// paper's evaluation (§3) and prints each next to the published values.
//
// Usage:
//
//	mermaid-bench              # everything (figures take ~30 s)
//	mermaid-bench -only t2,f4  # a subset: t1..t4, f3..f7, thrash, ovh, abl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: t1,t2,t3,t4,f3,f4,f5,f6,f7,psweep,thrash,ovh,abl,dirs,rc,avail,scale,scale1k")
	flag.Parse()
	if err := run(*only); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(only string) error {
	want := func(key string) bool {
		if only == "" {
			return true
		}
		for _, k := range strings.Split(only, ",") {
			if strings.TrimSpace(k) == key {
				return true
			}
		}
		return false
	}

	show := func(t *exp.Table) {
		fmt.Println(t.Format())
	}

	if want("t1") {
		show(exp.Table1Table())
	}
	if want("t2") {
		show(exp.Table2Table())
	}
	if want("t3") {
		show(exp.Table3Table())
	}
	if want("t4") {
		show(exp.Table4Table())
	}
	if want("f3") {
		show(exp.Figure3Table(exp.Figure3(6)))
	}
	if want("f4") {
		show(exp.SeriesTable("Figure 4: MM, master on Sun, slaves on 1–4 Fireflies (s)", exp.Figure4(16)))
	}
	if want("f5") {
		show(exp.Figure5Table(exp.Figure5(12)))
	}
	if want("f6") {
		show(exp.Figure6Table(exp.Figure6(8)))
	}
	if want("f7") {
		show(exp.Figure7Table(exp.Figure7(8)))
	}
	if want("psweep") {
		show(exp.PageSizeSweepTable(exp.PageSizeSweep(8)))
	}
	if want("thrash") {
		show(exp.ThrashingTable(exp.Thrashing([]int{6, 8, 12}, []int64{1, 2, 3, 4, 5})))
	}
	if want("ovh") {
		show(exp.OverheadTable(exp.SingleThreadOverhead()))
	}
	if want("abl") {
		r := exp.AblationSameKindSource()
		fmt.Printf("Ablation: %s\n", r.Name)
		fmt.Printf("  baseline: %.1f s, %d conversions\n", r.BaselineS, r.BaselineConv)
		fmt.Printf("  enabled:  %.1f s, %d conversions\n\n", r.TunedS, r.TunedConv)

		s := exp.SyncStyles(10)
		fmt.Println("Ablation: spinlock on shared memory vs distributed semaphores (§2.2)")
		fmt.Printf("  spinlock:  %.2f s, %d page transfers\n", s.SpinlockS, s.SpinlockTransfers)
		fmt.Printf("  semaphore: %.2f s, %d page transfers\n\n", s.SemaphoreS, s.SemaphoreTransfers)

		m := exp.ManagerPlacement()
		fmt.Println("Ablation: fixed distributed managers vs a central manager")
		fmt.Printf("  distributed: %.1f s, %d transfers\n", m.DistributedS, m.DistributedTransfers)
		fmt.Printf("  central:     %.1f s, %d transfers\n\n", m.CentralS, m.CentralTransfers)

		show(exp.AlgorithmChoiceTable(exp.AlgorithmChoice()))
		show(exp.InvalidationTable(exp.InvalidationScaling([]int{1, 3, 5, 10, 14})))
	}
	// The manager-scheme comparison and the scaling sweeps run only
	// when asked for by name: the default output is a bit-identity
	// regression gate against earlier builds and must not grow new
	// sections.
	if only != "" && want("dirs") {
		show(exp.DirectorySchemesTable(exp.DirectorySchemes()))
	}
	// rc is the §3.3 extension: the thrashing configuration rerun under
	// lazy release consistency next to its write-invalidate baseline.
	if only != "" && want("rc") {
		show(exp.ThrashingRCTable(exp.ThrashingRC([]int{6, 8, 12}, 1)))
	}
	if only != "" && want("avail") {
		show(exp.PartitionAvailabilityTable(exp.PartitionAvailability()))
	}
	// scale is the CI smoke sweep (up to 256 hosts, under the check
	// target's time budget); scale1k is the nightly full sweep with the
	// 1024-host runs.
	if only != "" && want("scale") {
		show(exp.DirectoryScalingTable(exp.DirectoryScaling([]int{16, 64, 256})))
	}
	if only != "" && want("scale1k") {
		show(exp.DirectoryScalingTable(exp.DirectoryScaling([]int{16, 64, 256, 1024})))
	}
	return nil
}
