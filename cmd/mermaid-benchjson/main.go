// Command mermaid-benchjson converts `go test -bench` text output into
// a stable JSON document, and validates such documents.
//
// Usage:
//
//	go test -run '^$' -bench Real -benchmem . | mermaid-benchjson -o BENCH_1.json
//	mermaid-benchjson -validate BENCH_1.json
//
// The emitted JSON is deliberately timestamp-free so that re-running
// the harness on unchanged code produces a minimal diff: only the
// measured numbers move.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics not produced by a given
// benchmark (e.g. MB/s without -benchmem, or B/op without SetBytes)
// are omitted from the JSON rather than reported as zero.
type Result struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level document.
type Report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	validate := flag.String("validate", "", "validate an existing JSON report instead of parsing bench output")
	flag.Parse()

	if *validate != "" {
		if err := validateFile(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "mermaid-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *validate)
		return
	}

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mermaid-benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "mermaid-benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mermaid-benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mermaid-benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parse reads `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkName-8   1000  1234 ns/op  56.78 MB/s  32 B/op  1 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped. Header lines (goos/goarch/pkg/
// cpu) populate the report metadata; everything else is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, *res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return nil, fmt.Errorf("want at least name, iterations, and one metric")
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iterations: %w", err)
	}
	res := &Result{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		val := v
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "MB/s":
			res.MBPerS = &val
		case "B/op":
			res.BytesPerOp = &val
		case "allocs/op":
			res.AllocsPerOp = &val
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = val
		}
	}
	if !seenNs {
		return nil, fmt.Errorf("no ns/op metric")
	}
	return res, nil
}

// validateFile checks that a report is well-formed: parseable JSON,
// at least one benchmark, and every benchmark carrying a name,
// positive iteration count, and positive ns/op.
func validateFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks", path)
	}
	for _, b := range rep.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%s: benchmark with empty name", path)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("%s: %s: iterations %d", path, b.Name, b.Iterations)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s: ns_per_op %v", path, b.Name, b.NsPerOp)
		}
	}
	return nil
}
