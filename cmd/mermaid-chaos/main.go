// Command mermaid-chaos runs randomized fault-injection campaigns
// against the simulated Mermaid DSM cluster (internal/chaos):
//
//	go run ./cmd/mermaid-chaos -list
//	go run ./cmd/mermaid-chaos -workload=slots -class=crash -seed=1 -runs=10
//	go run ./cmd/mermaid-chaos -workload=counter -class=mix -seed=7 -verify
//	go run ./cmd/mermaid-chaos -replay=chaos1:slots:crash:3
//
// Every run derives its fault schedule (burst loss, duplication,
// corruption, partitions, a host crash) from the seed, so any
// violation's token replays it bit-identically. Exit status: 0 when
// every run passed every oracle, 2 when a violation was found (its
// token is printed), 1 on usage or execution errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/dsm"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list workloads and schedule classes, then exit")
		workload = flag.String("workload", "slots", "workload to torment (see -list)")
		class    = flag.String("class", "crash", "fault schedule class: drop, partition, crash, mix")
		seed     = flag.Int64("seed", 1, "base seed; run i uses seed+i")
		runs     = flag.Int("runs", 1, "number of consecutive seeds to run")
		verify   = flag.Bool("verify", false, "run each seed twice and require bit-identical outcomes")
		replay   = flag.String("replay", "", "replay a chaos1:... token and print its fault plan and outcome")
		maxSteps = flag.Int("max-steps", 0, "per-run event budget (0 = default; exceeding it is reported as hung)")
		mutation = flag.String("mutation", "", "inject a named DSM protocol bug and require the campaign to catch it (exit 2 if it survives every run)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range chaos.All() {
			fmt.Printf("  %-8s %s\n", w.Name, w.Desc)
		}
		fmt.Println("classes:")
		for _, c := range chaos.Classes() {
			fmt.Printf("  %s\n", c)
		}
		return 0
	}

	opts := chaos.Opts{MaxSteps: *maxSteps}
	if *mutation != "" {
		if *verify || *replay != "" {
			fmt.Fprintln(os.Stderr, "mermaid-chaos: -mutation cannot be combined with -verify or -replay")
			return 1
		}
		found := false
		for _, m := range dsm.Mutations() {
			if m != dsm.MutNone && m.String() == *mutation {
				opts.Mut = m
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "mermaid-chaos: unknown mutation %q\n", *mutation)
			return 1
		}
	}

	if *replay != "" {
		res, err := chaos.Replay(*replay, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mermaid-chaos:", err)
			return 1
		}
		fmt.Println("fault plan:")
		for _, line := range res.Plan {
			fmt.Println(" ", line)
		}
		fmt.Printf("outcome: %s", res.Outcome)
		if res.Detail != "" {
			fmt.Printf(" — %s", res.Detail)
		}
		fmt.Printf("\n%s\n", res.Fingerprint)
		if res.Outcome != chaos.OK {
			return 2
		}
		return 0
	}

	w, err := chaos.Lookup(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-chaos:", err)
		return 1
	}
	cl, err := chaos.ParseClass(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-chaos:", err)
		return 1
	}

	if *verify {
		bad := 0
		for i := 0; i < *runs; i++ {
			res, err := chaos.Verify(w, cl, *seed+int64(i), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mermaid-chaos:", err)
				return 1
			}
			fmt.Printf("%s %s (verified deterministic)\n", res.Token, res.Outcome)
			if res.Outcome != chaos.OK {
				fmt.Printf("  %s\n  replay: %s\n", res.Detail, res.Token)
				bad++
			}
		}
		if bad > 0 {
			return 2
		}
		return 0
	}

	series, err := chaos.RunSeries(w, cl, *seed, *runs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-chaos:", err)
		return 1
	}
	if opts.Mut != dsm.MutNone {
		// Kill semantics: the campaign hunts an injected bug, so at
		// least one run must catch it — a clean sweep means the oracles
		// have a blind spot.
		if len(series.Violations) > 0 {
			fmt.Printf("mutation %s KILLED: caught in %d/%d run(s), first by %s\n",
				opts.Mut, len(series.Violations), *runs, series.Violations[0])
			return 0
		}
		fmt.Printf("mutation %s SURVIVED %d run(s)\n", opts.Mut, *runs)
		return 2
	}
	for _, res := range series.Results {
		fmt.Printf("%s %s", res.Token, res.Outcome)
		if res.PagesRecovered > 0 || res.PagesLost > 0 {
			fmt.Printf(" (recovered=%d lost=%d", res.PagesRecovered, res.PagesLost)
			if res.RecoveryLatency > 0 {
				fmt.Printf(" latency=%v", res.RecoveryLatency)
			}
			fmt.Print(")")
		}
		fmt.Println()
		if res.Outcome != chaos.OK {
			fmt.Printf("  %s\n  replay: %s\n", res.Detail, res.Token)
		}
	}
	fmt.Println(series)
	if len(series.Violations) > 0 {
		return 2
	}
	return 0
}
