// Command mermaid-trace runs a small heterogeneous matrix
// multiplication and prints the DSM protocol event trace (faults,
// fetches, serves, invalidations, upgrades) followed by per-host
// statistics — a window into the write-invalidate protocol at work.
//
// Usage:
//
//	mermaid-trace [-n 64] [-threads 4] [-mm2] [-small] [-max 200]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/matmul"
	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/dsm"
)

func main() {
	var (
		n       = flag.Int("n", 64, "matrix dimension")
		threads = flag.Int("threads", 4, "slave threads over two Fireflies")
		mm2     = flag.Bool("mm2", false, "round-robin row assignment (MM2)")
		small   = flag.Bool("small", false, "smallest page size algorithm (1KB pages)")
		maxEv   = flag.Int("max", 200, "maximum trace events to print (0 = all)")
	)
	flag.Parse()
	if err := run(*n, *threads, *mm2, *small, *maxEv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(n, threads int, mm2, small bool, maxEv int) error {
	pageSize := 8192
	if small {
		pageSize = 1024
	}
	events := 0
	suppressed := 0
	c, err := cluster.New(cluster.Config{
		Hosts: []cluster.HostSpec{
			{Kind: arch.Sun},
			{Kind: arch.Firefly, CPUs: 6},
			{Kind: arch.Firefly, CPUs: 6},
		},
		PageSize: pageSize,
		Seed:     1,
		Trace: func(ev dsm.TraceEvent) {
			events++
			if maxEv > 0 && events > maxEv {
				suppressed++
				return
			}
			fmt.Printf("%12.3fms  host %d  %-11s page %d\n",
				ev.Time.Milliseconds(), ev.Host, ev.Event, ev.Page)
		},
	})
	if err != nil {
		return err
	}

	assign := matmul.MM1
	if mm2 {
		assign = matmul.MM2
	}
	r := matmul.Register(c)
	res, err := r.Run(matmul.Config{
		N:          n,
		Master:     0,
		Slaves:     placeOverTwoFireflies(threads),
		Assignment: assign,
		Verify:     true,
	})
	if err != nil {
		return err
	}
	if suppressed > 0 {
		fmt.Printf("… %d further events suppressed (-max)\n", suppressed)
	}

	fmt.Printf("\n%s %d×%d, %d threads, %dB pages: %.2fs virtual, correct=%v\n\n",
		assign, n, n, threads, pageSize, res.Elapsed.Seconds(), res.Correct)
	fmt.Printf("%-6s %-8s %11s %11s %8s %8s %9s %11s %6s\n",
		"host", "kind", "read-fault", "write-fault", "fetched", "served", "upgrades", "invalidated", "conv")
	for i := 0; i < 3; i++ {
		s := c.Hosts[i].DSM.Stats()
		fmt.Printf("%-6d %-8v %11d %11d %8d %8d %9d %11d %6d\n",
			i, c.Hosts[i].Arch.Kind, s.ReadFaults, s.WriteFaults,
			s.PagesFetched, s.PagesServed, s.Upgrades, s.InvalidationsReceived, s.Conversions)
	}
	net := c.Net.Stats()
	fmt.Printf("\nnetwork: %d frames, %d payload bytes, medium busy %.1fms\n",
		net.FramesSent, net.BytesSent, float64(net.BusyTime.Microseconds())/1000)

	fmt.Println("\nhottest pages (fetches per host):")
	for i := 0; i < 3; i++ {
		for _, hp := range c.Hosts[i].DSM.HotPages(3) {
			fmt.Printf("  host %d: page %-4d ×%d\n", i, hp.Page, hp.Fetches)
		}
	}
	return nil
}

// placeOverTwoFireflies spreads t threads over hosts 1 and 2.
func placeOverTwoFireflies(t int) []cluster.HostID {
	slaves := make([]cluster.HostID, t)
	for i := range slaves {
		slaves[i] = cluster.HostID(1 + i%2)
	}
	return slaves
}
