// Command mermaid-mc explores the schedule space of small Mermaid DSM
// workloads with the stateless model checker (internal/mc):
//
//	go run ./cmd/mermaid-mc -list
//	go run ./cmd/mermaid-mc -workload=basic -strategy=dfs
//	go run ./cmd/mermaid-mc -workload=basic -mutation=skip-invalidation
//	go run ./cmd/mermaid-mc -replay=mc1:basic:skip-invalidation:0.2.1
//	go run ./cmd/mermaid-mc -kill
//
// Exit status: 0 when the exploration matches expectations (no
// violation on the correct protocol; a violation found when a mutation
// was injected; every mutation killed in -kill mode), 2 when it does
// not, 1 on usage or execution errors.
//
// Any violation is reported with a schedule token; pass it back via
// -replay or the MERMAID_MC_SEED environment variable to reproduce the
// run with a transcript of every scheduling choice.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dsm"
	"repro/internal/mc"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list         = flag.Bool("list", false, "list workloads and mutations, then exit")
		workload     = flag.String("workload", "basic", "workload to explore (see -list)")
		strategy     = flag.String("strategy", "dfs", "exploration strategy: dfs, random, or delay")
		mutation     = flag.String("mutation", "none", "protocol mutation to inject (see -list)")
		maxSchedules = flag.Int("max-schedules", 2000, "schedule budget for dfs/delay strategies")
		maxSteps     = flag.Int("max-steps", 0, "per-run event budget (0 = default; exceeding it is a livelock)")
		depth        = flag.Int("depth", 0, "dfs: only branch at the first N choice points (0 = unbounded)")
		noPrune      = flag.Bool("no-prune", false, "dfs: disable state-fingerprint pruning")
		runs         = flag.Int("runs", 500, "random: number of walks")
		seed         = flag.Int64("seed", 1, "random: base seed (walk r uses seed+r)")
		delays       = flag.Int("delays", 2, "delay: deviation budget (sum of deferred-event indices)")
		replay       = flag.String("replay", "", "replay a schedule token and print its transcript")
		kill         = flag.Bool("kill", false, "run the full mutation-kill suite")
		killBudget   = flag.Int("kill-budget", 200, "kill: schedule budget per mutation")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range mc.All() {
			fmt.Printf("  %-8s %s\n", w.Name, w.Desc)
		}
		fmt.Println("mutations:")
		for _, m := range dsm.Mutations() {
			fmt.Printf("  %s\n", m)
		}
		return 0
	}

	if *replay == "" {
		*replay = os.Getenv("MERMAID_MC_SEED")
	}
	if *replay != "" {
		res, err := mc.Replay(*replay, *maxSteps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mermaid-mc:", err)
			return 1
		}
		for _, line := range res.Transcript {
			fmt.Println(line)
		}
		fmt.Printf("outcome: %s", res.Outcome)
		if res.Detail != "" {
			fmt.Printf(" — %s", res.Detail)
		}
		fmt.Printf(" (%d steps, %d choice points, t=%v)\n", res.Steps, len(res.Choices), res.Now)
		if res.Outcome != mc.OK {
			return 2
		}
		return 0
	}

	if *kill {
		rs, err := mc.RunKillSuite(mc.KillOpts{MaxSchedules: *killBudget, MaxSteps: *maxSteps})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mermaid-mc:", err)
			return 1
		}
		fmt.Print(mc.FormatKillResults(rs))
		for _, r := range rs {
			if !r.Killed {
				return 2
			}
		}
		return 0
	}

	w, err := mc.Lookup(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-mc:", err)
		return 1
	}
	mut, err := dsm.ParseMutation(*mutation)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-mc:", err)
		return 1
	}

	var rep *mc.Report
	switch *strategy {
	case "dfs":
		rep, err = mc.RunDFS(w, mut, mc.DFSOpts{
			MaxSchedules: *maxSchedules, MaxSteps: *maxSteps, MaxDepth: *depth, NoPrune: *noPrune,
		})
	case "random":
		rep, err = mc.RunRandom(w, mut, mc.RandomOpts{Runs: *runs, Seed: *seed, MaxSteps: *maxSteps})
	case "delay":
		rep, err = mc.RunDelayBounded(w, mut, mc.DelayOpts{
			MaxDelays: *delays, MaxSchedules: *maxSchedules, MaxSteps: *maxSteps,
		})
	default:
		fmt.Fprintf(os.Stderr, "mermaid-mc: unknown strategy %q (dfs, random, delay)\n", *strategy)
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-mc:", err)
		return 1
	}
	fmt.Println(rep)

	// The verdict: a correct protocol must survive every schedule; a
	// mutated one must not survive the exploration.
	if mut == dsm.MutNone && rep.Violating != nil {
		fmt.Fprintln(os.Stderr, "mermaid-mc: violation on the unmutated protocol")
		return 2
	}
	if mut != dsm.MutNone && rep.Violating == nil {
		fmt.Fprintf(os.Stderr, "mermaid-mc: mutation %s not detected within budget\n", mut)
		return 2
	}
	return 0
}
