// Command mermaid-vet runs the project's custom static analyzer
// (internal/vet) over the module's packages:
//
//	go run ./cmd/mermaid-vet ./...
//
// It type-checks every package from source, resolving imports through
// the gc export data that `go list -export` produces — standard
// library only, no network, no third-party analysis frameworks — and
// exits non-zero if any rule fires. See internal/vet for the rules.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/vet"
)

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-vet:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	module, err := goModulePath()
	if err != nil {
		return err
	}

	// One `go list` resolves everything: the module packages to
	// analyze, their dependency closure, and the compiled export data
	// that lets go/types resolve every import offline.
	pkgs, err := goList(patterns)
	if err != nil {
		return err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && strings.HasPrefix(p.ImportPath, module) {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	cfg := vet.DefaultConfig(module)
	var findings []vet.Finding
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		pkg := vet.NewPackage(fset, p.ImportPath, files, imp)
		findings = append(findings, vet.Check(pkg, cfg)...)
	}

	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "mermaid-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
	return nil
}

// goModulePath reports the main module's path.
func goModulePath() (string, error) {
	out, err := exec.Command("go", "list", "-m").Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	mod := strings.TrimSpace(string(out))
	if mod == "" {
		return "", fmt.Errorf("not inside a Go module")
	}
	return mod, nil
}

// goList runs `go list -json -export -deps` over the patterns and
// decodes the package stream.
func goList(patterns []string) ([]*listedPackage, error) {
	cmdArgs := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
