// Command mermaid-vet runs the project's custom static analyzer
// (internal/vet) over the module's packages:
//
//	go run ./cmd/mermaid-vet [-json] ./...
//
// It type-checks every package from source, resolving imports through
// the gc export data that `go list -export` produces — standard
// library only, no network, no third-party analysis frameworks — and
// exits non-zero if any rule fires. Packages are analyzed in parallel
// across GOMAXPROCS workers (each with its own FileSet and importer —
// the gc importer is not safe for concurrent use); the module-global
// kind-dispatch facts are joined after the fan-in. With -json the
// findings and coverage statistics are printed as a single JSON
// object. See internal/vet for the rules.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vet"
)

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
}

// report is the -json output shape.
type report struct {
	Findings []vet.Finding `json:"findings"`
	Stats    struct {
		Packages   int   `json:"packages"`
		Funcs      int   `json:"funcs_analyzed"`
		Blocks     int   `json:"cfg_blocks"`
		Suppressed int   `json:"suppressed"`
		ElapsedMS  int64 `json:"elapsed_ms"`
	} `json:"stats"`
	ByRule map[string]int `json:"findings_by_rule"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-vet:", err)
		os.Exit(2)
	}
}

// pkgResult is one worker's output for one package.
type pkgResult struct {
	findings []vet.Finding
	stats    vet.Stats
	facts    *vet.KindFacts
	err      error
}

func run(args []string) error {
	fs := flag.NewFlagSet("mermaid-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings and coverage statistics as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()

	module, err := goModulePath()
	if err != nil {
		return err
	}

	// One `go list` resolves everything: the module packages to
	// analyze, their dependency closure, and the compiled export data
	// that lets go/types resolve every import offline.
	pkgs, err := goList(patterns)
	if err != nil {
		return err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && strings.HasPrefix(p.ImportPath, module) {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	cfg := vet.DefaultConfig(module)
	results := make([]pkgResult, len(targets))

	// Fan the packages out over GOMAXPROCS workers. The exports map is
	// read-only from here on; each worker builds its own FileSet and gc
	// importer, which are not safe to share.
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fset := token.NewFileSet()
			imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
				f, ok := exports[path]
				if !ok {
					return nil, fmt.Errorf("no export data for %q", path)
				}
				return os.Open(f)
			})
			for i := range work {
				results[i] = checkPackage(fset, imp, targets[i], cfg)
			}
		}()
	}
	for i := range targets {
		work <- i
	}
	close(work)
	wg.Wait()

	var findings []vet.Finding
	var stats vet.Stats
	var allFacts []*vet.KindFacts
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		findings = append(findings, r.findings...)
		stats.Add(r.stats)
		allFacts = append(allFacts, r.facts)
	}
	findings = append(findings, vet.CheckKindDispatch(allFacts)...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	if *jsonOut {
		rep := report{Findings: findings, ByRule: map[string]int{}}
		if rep.Findings == nil {
			rep.Findings = []vet.Finding{}
		}
		for _, f := range findings {
			rep.ByRule[f.Rule]++
		}
		rep.Stats.Packages = len(targets)
		rep.Stats.Funcs = stats.Funcs
		rep.Stats.Blocks = stats.Blocks
		rep.Stats.Suppressed = stats.Suppressed
		rep.Stats.ElapsedMS = time.Since(start).Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "mermaid-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
	return nil
}

// checkPackage parses, type-checks, and analyzes one package.
func checkPackage(fset *token.FileSet, imp types.Importer, p *listedPackage, cfg *vet.Config) pkgResult {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return pkgResult{err: fmt.Errorf("parsing %s: %w", name, err)}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return pkgResult{}
	}
	pkg := vet.NewPackage(fset, p.ImportPath, files, imp)
	findings, stats := vet.CheckWithStats(pkg, cfg)
	return pkgResult{
		findings: findings,
		stats:    stats,
		facts:    vet.CollectKindFacts(pkg, cfg),
	}
}

// goModulePath reports the main module's path.
func goModulePath() (string, error) {
	out, err := exec.Command("go", "list", "-m").Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	mod := strings.TrimSpace(string(out))
	if mod == "" {
		return "", fmt.Errorf("not inside a Go module")
	}
	return mod, nil
}

// goList runs `go list -json -export -deps` over the patterns and
// decodes the package stream.
func goList(patterns []string) ([]*listedPackage, error) {
	cmdArgs := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
