// Command mermaid-vet runs the project's custom static analyzer
// (internal/vet) over the module's packages:
//
//	go run ./cmd/mermaid-vet [-json] [-interproc=false] ./...
//
// It type-checks every package from source, resolving imports through
// the gc export data that `go list -export` produces — standard
// library only, no network, no third-party analysis frameworks — and
// exits non-zero if any rule fires.
//
// The run is three-phased. Phase A parses and type-checks all target
// packages in parallel (each worker owns a FileSet and gc importer;
// neither is safe to share). Phase B walks the targets in
// import-topological order, computing interprocedural function
// summaries into one shared table — callees before callers, so
// cross-package call sites see real effect signatures instead of
// conservative defaults. Phase C runs the per-package rules in
// parallel against the shared table (per-package summarization is a
// cache hit by then) and collects the module-global facts; the
// kind-dispatch and lock-order analyses join those facts after the
// fan-in. With -json the findings, coverage statistics, per-analysis
// timings, and summary-cache statistics are printed as a single JSON
// object. See internal/vet for the rules.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vet"
)

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// report is the -json output shape.
type report struct {
	Findings []vet.Finding `json:"findings"`
	Stats    struct {
		Packages       int   `json:"packages"`
		Funcs          int   `json:"funcs_analyzed"`
		Blocks         int   `json:"cfg_blocks"`
		Suppressed     int   `json:"suppressed"`
		Summarized     int   `json:"funcs_summarized"`
		Discharged     int   `json:"map_orders_discharged"`
		SummaryEntries int   `json:"summary_entries"`
		SummaryLookups int   `json:"summary_lookups"`
		SummaryHits    int   `json:"summary_hits"`
		LockClasses    int   `json:"lock_classes"`
		LockEdges      int   `json:"lock_edges"`
		ElapsedMS      int64 `json:"elapsed_ms"`
	} `json:"stats"`
	TimingsMS map[string]float64 `json:"timings_ms"`
	ByRule    map[string]int     `json:"findings_by_rule"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mermaid-vet:", err)
		os.Exit(2)
	}
}

// pkgResult is one worker's phase-C output for one package.
type pkgResult struct {
	findings  []vet.Finding
	stats     vet.Stats
	facts     *vet.KindFacts
	lockFacts *vet.LockFacts
}

func run(args []string) error {
	fs := flag.NewFlagSet("mermaid-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings and coverage statistics as JSON")
	interproc := fs.Bool("interproc", true, "share function summaries across packages (phase B); false limits inference to each package")
	maxElapsed := fs.Int64("max-elapsed-ms", 0, "fail if the run exceeds this wall-time budget (0 = no budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()

	module, err := goModulePath()
	if err != nil {
		return err
	}

	// One `go list` resolves everything: the module packages to
	// analyze, their dependency closure, and the compiled export data
	// that lets go/types resolve every import offline.
	pkgs, err := goList(patterns)
	if err != nil {
		return err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && strings.HasPrefix(p.ImportPath, module) {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	cfg := vet.DefaultConfig(module)

	// Phase A: parse and type-check every target in parallel. The
	// exports map is read-only from here on; each worker builds its own
	// FileSet and gc importer, which are not safe to share. The
	// resulting vet.Package carries its worker's FileSet, so later
	// phases can use it from any goroutine.
	loaded := make([]*vet.Package, len(targets))
	errs := make([]error, len(targets))
	fanOut(len(targets), func(worker int, indexes <-chan int) {
		fset := token.NewFileSet()
		imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
		for i := range indexes {
			loaded[i], errs[i] = loadPackage(fset, imp, targets[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase B: summarize in import-topological order into one shared
	// table, so every cross-package call site in phase C finds its
	// callee's inferred effects. Sequential by design — each package's
	// summaries depend on its imports' being complete.
	tbl := vet.NewSummaryTable()
	summarizeStart := time.Now()
	summarized := 0
	if *interproc {
		for _, i := range topoOrder(targets) {
			if loaded[i] != nil {
				summarized += vet.ComputeSummaries(loaded[i], cfg, tbl)
			}
		}
	}
	summarizeMS := float64(time.Since(summarizeStart).Nanoseconds()) / 1e6

	// Phase C: run the per-package rules in parallel. With the shared
	// table pre-populated, each package's own summarization pass is a
	// cache hit; with -interproc=false every package gets a fresh table
	// (intra-package inference only).
	results := make([]pkgResult, len(targets))
	fanOut(len(targets), func(worker int, indexes <-chan int) {
		for i := range indexes {
			if loaded[i] == nil {
				continue
			}
			t := tbl
			if !*interproc {
				t = vet.NewSummaryTable()
			}
			findings, stats := vet.CheckWithTable(loaded[i], cfg, t)
			results[i] = pkgResult{
				findings:  findings,
				stats:     stats,
				facts:     vet.CollectKindFacts(loaded[i], cfg),
				lockFacts: vet.CollectLockFacts(loaded[i], cfg),
			}
		}
	})

	var findings []vet.Finding
	var stats vet.Stats
	var allFacts []*vet.KindFacts
	var allLockFacts []*vet.LockFacts
	for _, r := range results {
		findings = append(findings, r.findings...)
		stats.Add(r.stats)
		allFacts = append(allFacts, r.facts)
		allLockFacts = append(allLockFacts, r.lockFacts)
	}
	findings = append(findings, vet.CheckKindDispatch(allFacts)...)
	lockStart := time.Now()
	lockFindings, lockGraph := vet.CheckLockOrder(allLockFacts)
	lockMS := float64(time.Since(lockStart).Nanoseconds()) / 1e6
	findings = append(findings, lockFindings...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	elapsed := time.Since(start)
	if *jsonOut {
		rep := report{Findings: findings, ByRule: map[string]int{}, TimingsMS: map[string]float64{}}
		if rep.Findings == nil {
			rep.Findings = []vet.Finding{}
		}
		for _, f := range findings {
			rep.ByRule[f.Rule]++
		}
		for rule, ns := range stats.RuleNanos {
			rep.TimingsMS[rule] += float64(ns) / 1e6
		}
		rep.TimingsMS["summaries-shared"] = summarizeMS
		rep.TimingsMS["lock-order-join"] = lockMS
		rep.Stats.Packages = len(targets)
		rep.Stats.Funcs = stats.Funcs
		rep.Stats.Blocks = stats.Blocks
		rep.Stats.Suppressed = stats.Suppressed
		rep.Stats.Summarized = summarized + stats.Summarized
		rep.Stats.Discharged = stats.Discharged
		rep.Stats.SummaryEntries = tbl.Size()
		rep.Stats.SummaryLookups, rep.Stats.SummaryHits = tbl.CacheStats()
		rep.Stats.LockClasses = lockGraph.Classes
		rep.Stats.LockEdges = lockGraph.Edges
		rep.Stats.ElapsedMS = elapsed.Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	failed := false
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "mermaid-vet: %d finding(s)\n", n)
		failed = true
	}
	if *maxElapsed > 0 && elapsed.Milliseconds() > *maxElapsed {
		fmt.Fprintf(os.Stderr, "mermaid-vet: run took %dms, over the %dms budget\n",
			elapsed.Milliseconds(), *maxElapsed)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// fanOut distributes n indexed work items over GOMAXPROCS workers.
func fanOut(n int, worker func(worker int, indexes <-chan int)) {
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker(w, work)
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// topoOrder returns target indexes in import-topological order:
// every target after all targets it imports.
func topoOrder(targets []*listedPackage) []int {
	index := map[string]int{}
	for i, t := range targets {
		index[t.ImportPath] = i
	}
	order := make([]int, 0, len(targets))
	state := make([]int, len(targets)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return // a cycle cannot occur (Go forbids import cycles)
		}
		state[i] = 1
		for _, imp := range targets[i].Imports {
			if j, ok := index[imp]; ok {
				visit(j)
			}
		}
		state[i] = 2
		order = append(order, i)
	}
	for i := range targets {
		visit(i)
	}
	return order
}

// loadPackage parses and type-checks one package.
func loadPackage(fset *token.FileSet, imp types.Importer, p *listedPackage) (*vet.Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return vet.NewPackage(fset, p.ImportPath, files, imp), nil
}

// goModulePath reports the main module's path.
func goModulePath() (string, error) {
	out, err := exec.Command("go", "list", "-m").Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	mod := strings.TrimSpace(string(out))
	if mod == "" {
		return "", fmt.Errorf("not inside a Go module")
	}
	return mod, nil
}

// goList runs `go list -json -export -deps` over the patterns and
// decodes the package stream.
func goList(patterns []string) ([]*listedPackage, error) {
	cmdArgs := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
