package mermaid

// Tests for the extension features: thread migration, automatic
// conversion-routine generation from Go structs, the centralized
// manager ablation, and atomic shared-memory operations.

import (
	"reflect"
	"testing"
	"time"
)

func TestThreadMigration(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	var kinds []Kind
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		kinds = append(kinds, e.Kind())
		e.Compute(10 * time.Millisecond)
		if err := e.MigrateTo(0); err != nil { // Firefly → Sun
			t.Error(err)
		}
		kinds = append(kinds, e.Kind())
		e.Compute(10 * time.Millisecond)
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		h, err := e.CreateThread(1, worker)
		if err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		h.Join()
	})
	if len(kinds) != 2 || kinds[0] != Firefly || kinds[1] != Sun {
		t.Fatalf("kinds %v, want [Firefly Sun]", kinds)
	}
}

func TestMigratedThreadFaultsPagesToNewHost(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	var addr Addr
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		if err := e.MigrateTo(2); err != nil { // move to the second Firefly
			t.Error(err)
		}
		e.WriteInt32(addr, 7) // fault lands on host 2
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr = e.MustAlloc(Int32, 16)
		e.WriteInt32(addr, 1)
		if _, err := e.CreateThread(1, worker); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
	})
	if c.StatsOf(2).WriteFaults == 0 {
		t.Fatal("migrated thread's write fault not recorded on the destination host")
	}
	if c.StatsOf(1).WriteFaults != 0 {
		t.Fatal("write fault recorded on the origin host after migration")
	}
}

func TestMainCannotMigrate(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.Run(0, func(e *Env) {
		if err := e.MigrateTo(1); err == nil {
			t.Error("main function migrated")
		}
	})
}

func TestMigrationJoinStillWorks(t *testing.T) {
	// A thread created remotely that migrates before exiting must still
	// notify its creator for Join.
	c := twoKindCluster(t, nil)
	done := false
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		_ = e.MigrateTo(2)
		e.Compute(time.Millisecond)
		done = true
	})
	c.Run(0, func(e *Env) {
		h, err := e.CreateThread(1, worker)
		if err != nil {
			t.Error(err)
			return
		}
		h.Join()
		if !done {
			t.Error("join returned before migrated thread finished")
		}
	})
}

func TestRegisterGoStructThroughFacade(t *testing.T) {
	type Particle struct {
		Pos  [3]float32
		Mass float64
		ID   int32
		Next SharedPtr
	}
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	pt, err := c.RegisterGoStruct(reflect.TypeOf(Particle{}))
	if err != nil {
		t.Fatal(err)
	}
	bounce := c.MustRegisterFunc(func(e *Env, args []uint32) {
		buf := make([]byte, 28)
		e.ReadStruct(Addr(args[0]), pt, buf)
		e.WriteStruct(Addr(args[0]), pt, buf)
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(pt, 2)
		buf := make([]byte, 28)
		e.ReadStruct(addr, pt, buf) // zero record round trip
		if _, err := e.CreateThread(1, bounce, uint32(addr)); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		got := make([]byte, 28)
		e.ReadStruct(addr, pt, got)
		for i, b := range got {
			if b != 0 {
				t.Fatalf("byte %d = %d after zero-record round trip", i, b)
			}
		}
	})
}

func TestCentralManagerStillCorrect(t *testing.T) {
	c := twoKindCluster(t, func(cfg *Config) { cfg.CentralManager = true })
	c.DefineSemaphore(1, 0, 0)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		v := e.ReadInt32(Addr(args[0]))
		e.WriteInt32(Addr(args[0]), v+1)
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(Int32, 64)
		e.WriteInt32(addr, 0)
		for h := HostID(1); h <= 2; h++ {
			if _, err := e.CreateThread(h, worker, uint32(addr)); err != nil {
				t.Error(err)
				return
			}
			e.P(1) // serialize so increments don't race
		}
		if got := e.ReadInt32(addr); got != 2 {
			t.Errorf("counter %d, want 2 under central manager", got)
		}
	})
}

func TestAtomicSwapMutualExclusion(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	var lock, counter Addr
	const rounds = 5
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		for i := 0; i < rounds; i++ {
			for e.AtomicSwapInt32(lock, 1) != 0 {
				e.Compute(time.Millisecond)
			}
			v := e.ReadInt32(counter)
			e.Compute(100 * time.Microsecond)
			e.WriteInt32(counter, v+1)
			e.AtomicSwapInt32(lock, 0)
		}
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		lock = e.MustAlloc(Int32, 2048)    // own page
		counter = e.MustAlloc(Int32, 2048) // own page
		e.WriteInt32(lock, 0)
		e.WriteInt32(counter, 0)
		for h := HostID(1); h <= 2; h++ {
			if _, err := e.CreateThread(h, worker); err != nil {
				t.Error(err)
				return
			}
		}
		e.P(1)
		e.P(1)
		if got := e.ReadInt32(counter); got != 2*rounds {
			t.Errorf("counter %d, want %d — spinlock failed to exclude", got, 2*rounds)
		}
	})
}

func TestUpdatePolicyThroughFacade(t *testing.T) {
	c := twoKindCluster(t, func(cfg *Config) { cfg.Policy = Update })
	c.DefineSemaphore(1, 0, 0)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		addr := Addr(args[0])
		v := e.ReadInt32(addr)
		e.WriteInt32(addr, v+100) // sequenced update, converted at replicas
		e.V(1)
	})
	reader := c.MustRegisterFunc(func(e *Env, args []uint32) {
		_ = e.ReadInt32(Addr(args[0])) // host 2 becomes a replica holder
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(Int32, 8)
		e.WriteInt32(addr, 1)
		if _, err := e.CreateThread(2, reader, uint32(addr)); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		if _, err := e.CreateThread(1, worker, uint32(addr)); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		if got := e.ReadInt32(addr); got != 101 {
			t.Errorf("replica value %d, want 101 pushed by update", got)
		}
	})
	// Host 2's replica must have received the push; the writer must
	// have sequenced through the manager.
	if c.StatsOf(2).UpdatesApplied == 0 {
		t.Error("host 2's replica received no update push")
	}
	if c.StatsOf(1).UpdateWrites == 0 {
		t.Error("worker sequenced no updates")
	}
}

func TestEnvFieldCodecs(t *testing.T) {
	// The same buffer written with the Sun's codecs and read with the
	// Firefly's codecs after conversion of a one-record struct page.
	type Rec struct {
		A int32
		B float64
		C int16
		P SharedPtr
	}
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	rt, err := c.RegisterGoStruct(reflect.TypeOf(Rec{}))
	if err != nil {
		t.Fatal(err)
	}
	const size = 4 + 8 + 2 + 4
	var addr, target Addr
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		buf := make([]byte, size)
		e.ReadStruct(addr, rt, buf)
		if e.Int32At(buf, 0) != -77 {
			t.Errorf("A = %d", e.Int32At(buf, 0))
		}
		if e.Float64At(buf, 4) != 2.75 {
			t.Errorf("B = %v", e.Float64At(buf, 4))
		}
		if e.Int16At(buf, 12) != 1234 {
			t.Errorf("C = %d", e.Int16At(buf, 12))
		}
		if got, ok := e.PointerAt(buf, 14); !ok || got != target {
			t.Errorf("P = %v ok=%v, want %v", got, ok, target)
		}
		e.PutPointerAt(buf, 14, 0, false)
		e.WriteStruct(addr, rt, buf)
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr = e.MustAlloc(rt, 1)
		target = e.MustAlloc(Int32, 4)
		buf := make([]byte, size)
		e.PutInt32At(buf, 0, -77)
		e.PutFloat64At(buf, 4, 2.75)
		e.PutInt16At(buf, 12, 1234)
		e.PutPointerAt(buf, 14, target, true)
		e.WriteStruct(addr, rt, buf)
		if _, err := e.CreateThread(1, worker); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		got := make([]byte, size)
		e.ReadStruct(addr, rt, got)
		if _, ok := e.PointerAt(got, 14); ok {
			t.Error("pointer not nulled by the firefly")
		}
		if e.Float32At(make([]byte, 4), 0) != 0 {
			t.Error("Float32At zero decode wrong")
		}
		b2 := make([]byte, 4)
		e.PutFloat32At(b2, 0, 1.5)
		if e.Float32At(b2, 0) != 1.5 {
			t.Error("Float32At round trip wrong")
		}
	})
}
